"""Tests for the metrics registry: counters, gauges, histograms."""

import threading

import pytest

from repro.telemetry.metrics import (
    COUNT_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("events")
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5

    def test_thread_safety(self):
        counter = Counter("events")

        def bump():
            for _ in range(1000):
                counter.add(1)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2.0


class TestHistogram:
    def test_count_sum_min_max(self):
        histogram = Histogram("latency")
        for value in (0.001, 0.01, 0.1):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(0.111)
        assert summary["min"] == 0.001
        assert summary["max"] == 0.1

    def test_quantiles_ordered_and_clamped(self):
        histogram = Histogram("latency")
        for value in [0.001] * 90 + [0.5] * 10:
            histogram.observe(value)
        p50 = histogram.quantile(0.50)
        p95 = histogram.quantile(0.95)
        p99 = histogram.quantile(0.99)
        assert p50 <= p95 <= p99
        # Clamped to the observed range: p99 cannot exceed the true max.
        assert 0.001 <= p50 <= 0.5
        assert p99 <= 0.5

    def test_median_roughly_central(self):
        histogram = Histogram("latency")
        for _ in range(100):
            histogram.observe(0.02)
        # All mass in one bucket: the median lands inside it.
        assert 0.01 <= histogram.quantile(0.5) <= 0.025

    def test_overflow_beyond_last_bucket(self):
        histogram = Histogram("counts", buckets=COUNT_BUCKETS)
        histogram.observe(1e9)
        summary = histogram.summary()
        assert summary["count"] == 1
        assert summary["max"] == 1e9

    def test_empty_summary(self):
        assert Histogram("empty").summary()["count"] == 0
        assert Histogram("empty").quantile(0.99) == 0.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.histogram("x")

    def test_snapshot_groups_and_sorts(self):
        registry = MetricsRegistry()
        registry.counter("b.count").add(2)
        registry.counter("a.count").add(1)
        registry.gauge("depth").set(7)
        registry.histogram("latency").observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.count", "b.count"]
        assert snapshot["gauges"]["depth"] == 7.0
        assert snapshot["histograms"]["latency"]["count"] == 1


class TestNullInstruments:
    def test_nulls_are_inert(self):
        NULL_COUNTER.add(5)
        NULL_GAUGE.set(5)
        NULL_HISTOGRAM.observe(5)
        assert NULL_COUNTER.value == 0.0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.summary()["count"] == 0
