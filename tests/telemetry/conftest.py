"""Shared fixtures for the telemetry tests."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _telemetry_isolation():
    """Force-close any active telemetry run after each test.

    ``start_run`` allows one run per process; a test that fails mid-run must
    not poison the rest of the suite.
    """
    yield
    telemetry.shutdown()
