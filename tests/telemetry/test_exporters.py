"""Tests for the trace exporters and the run report."""

import json

import pytest

from repro.telemetry.exporters import (
    ChromeTraceSink,
    JsonlTraceSink,
    load_run,
    render_report,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slo import SLOAccountant
from repro.telemetry.tracing import Tracer


def _span_record(name="work", cat="app", span_id=1, parent=None, thread="MainThread"):
    return {
        "type": "span",
        "name": name,
        "cat": cat,
        "id": span_id,
        "parent": parent,
        "ts": 0.001,
        "dur": 0.002,
        "thread": thread,
        "attrs": {"k": 1},
    }


def _slo_record(iteration=1, visible=12.0, budget=10.0, violated=True):
    return {
        "type": "slo",
        "iteration": iteration,
        "visible_latency_s": visible,
        "budget_s": budget,
        "violated": violated,
        "overshoot_s": max(0.0, visible - budget),
        "visible_by_kind": {},
    }


class TestJsonlTraceSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        sink.write_span(_span_record())
        sink.write_record(_slo_record())
        sink.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["type"] for r in records] == ["span", "slo"]
        assert records[0]["name"] == "work"
        assert records[1]["violated"] is True

    def test_lazy_open_writes_nothing_when_unused(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        JsonlTraceSink(path).close()
        assert not path.exists()

    def test_integration_with_tracer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        tracer = Tracer()
        tracer.add_sink(sink)
        with tracer.span("outer", "app"):
            with tracer.span("inner", "app"):
                pass
        sink.close()
        names = [json.loads(line)["name"] for line in path.read_text().splitlines()]
        # Spans are reported at end time: inner finishes first.
        assert names == ["inner", "outer"]


class TestChromeTraceSink:
    def test_structure(self, tmp_path):
        path = tmp_path / "chrome_trace.json"
        sink = ChromeTraceSink(path)
        sink.write_span(_span_record(thread="worker-0"))
        sink.write_record(_slo_record())
        sink.close()
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        phases = [event["ph"] for event in doc["traceEvents"]]
        # Two thread_name metadata events: worker-0 (span) and main (SLO mark).
        assert phases.count("M") == 2
        assert phases.count("X") == 1
        assert phases.count("i") == 1
        complete = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert complete["ts"] == pytest.approx(0.001 * 1e6)
        assert complete["dur"] == pytest.approx(0.002 * 1e6)
        assert complete["cat"] == "app"
        assert complete["args"]["span_id"] == 1

    def test_within_budget_slo_not_marked(self, tmp_path):
        path = tmp_path / "chrome_trace.json"
        sink = ChromeTraceSink(path)
        sink.write_record(_slo_record(violated=False, visible=1.0))
        sink.close()
        doc = json.loads(path.read_text())
        assert doc["traceEvents"] == []

    def test_threads_get_distinct_tids(self, tmp_path):
        path = tmp_path / "chrome_trace.json"
        sink = ChromeTraceSink(path)
        sink.write_span(_span_record(span_id=1, thread="MainThread"))
        sink.write_span(_span_record(span_id=2, thread="worker-0"))
        sink.close()
        doc = json.loads(path.read_text())
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(tids) == 2


class TestRenderReport:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("models.warm_fits").add(3)
        registry.gauge("queue.depth").set(2)
        registry.histogram("index.search_seconds").observe(0.004)
        return registry.snapshot()

    def test_metrics_tables(self):
        report = render_report(self._snapshot(), None, label="unit")
        assert "== telemetry report: unit ==" in report
        assert "models.warm_fits" in report
        assert "queue.depth" in report
        assert "index.search_seconds" in report

    def test_slo_section_shows_violations(self):
        accountant = SLOAccountant(budget_s=5.0)
        accountant.record(_FakeLatency(1, 3.0))
        accountant.record(_FakeLatency(2, 8.0))
        report = render_report(self._snapshot(), accountant.summary())
        assert "SLO (visible-latency budget 5 s per iteration):" in report
        assert "violations: 1" in report
        assert "VIOLATED" in report
        assert "worst: iteration 2" in report

    def test_no_budget_shows_latency_without_verdicts(self):
        accountant = SLOAccountant(budget_s=None)
        accountant.record(_FakeLatency(1, 3.0))
        report = render_report({}, accountant.summary())
        assert "no SLO budget declared" in report
        assert "VIOLATED" not in report


class _FakeLatency:
    """Duck-typed stand-in for the scheduler's IterationLatency."""

    def __init__(self, iteration, visible):
        self.iteration = iteration
        self.visible_latency = visible
        self.visible_by_kind = {"sample_selection": visible}


class TestLoadRun:
    def test_prefers_metrics_json(self, tmp_path):
        (tmp_path / "metrics.json").write_text(
            json.dumps({"label": "x", "metrics": {"counters": {}}, "slo": None})
        )
        doc = load_run(tmp_path)
        assert doc["label"] == "x"

    def test_falls_back_to_jsonl(self, tmp_path):
        lines = [
            json.dumps(_span_record()),
            json.dumps(_slo_record(iteration=1, visible=12.0)),
            json.dumps(_slo_record(iteration=2, visible=4.0, violated=False)),
        ]
        (tmp_path / "trace.jsonl").write_text("\n".join(lines) + "\n")
        doc = load_run(tmp_path)
        assert doc["slo"]["iterations"] == 2
        assert doc["slo"]["violations"] == 1
        assert doc["slo"]["worst"]["iteration"] == 1

    def test_missing_artifacts_raise(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(tmp_path)
