"""Span propagation across execution engines.

The property under test: every ``task:<kind>`` span — no matter which worker
thread executes it, or how many windows later — parents to the span that was
active when the task was *created*.  Tasks capture their trace context in
``Task.__post_init__`` and the engines re-activate it through
``telemetry.task_scope``, so background work nests under the iteration that
enqueued it.
"""

import random

import pytest

from repro import telemetry
from repro.scheduler.engine import ThreadPoolEngine
from repro.scheduler.scheduler import TaskScheduler
from repro.scheduler.tasks import Task, TaskKind

SCALE = 2e-3  # cost-model seconds -> wall seconds


@pytest.fixture
def sink():
    sink = telemetry.MemorySink()
    telemetry.start_run(extra_sinks=(sink,))
    return sink


def task_spans(sink):
    return [record for record in sink.spans if record["name"].startswith("task:")]


class TestThreadPoolPropagation:
    def test_task_spans_parent_to_enqueueing_iteration(self, sink):
        """Property test: random task batches over several iterations; every
        execution slice of every task must parent to its iteration's span."""
        rng = random.Random(7)
        engine = ThreadPoolEngine(num_workers=2, time_scale=SCALE, checkpoint_interval=0.25)
        scheduler = TaskScheduler(engine=engine)
        expected = {}  # task_id -> span id of the iteration that enqueued it
        try:
            for iteration in range(1, 5):
                scheduler.begin_iteration(iteration)
                span = telemetry.start_span("iteration", "session", iteration=iteration)
                for _ in range(rng.randint(1, 4)):
                    task = Task(
                        kind=TaskKind.FEATURE_EXTRACTION,
                        duration=rng.uniform(0.2, 1.5),
                    )
                    expected[task.task_id] = span.span_id
                    scheduler.submit(task)
                # Short windows: long tasks are preempted and finish only in a
                # LATER iteration's window, which is exactly the case where
                # implicit (thread-local) context would mis-parent them.
                scheduler.run_background_window(1.0)
                scheduler.close_iteration()
                span.end()
            scheduler.drain()
        finally:
            scheduler.shutdown()

        executed = task_spans(sink)
        assert len(executed) >= len(expected)
        for record in executed:
            task_id = record["attrs"]["task_id"]
            assert record["parent"] == expected[task_id], (
                f"task {task_id} slice ({record['attrs']['phase']}) parented to "
                f"{record['parent']}, expected iteration span {expected[task_id]}"
            )

    def test_slices_run_on_worker_threads(self, sink):
        engine = ThreadPoolEngine(num_workers=2, time_scale=SCALE, checkpoint_interval=0.25)
        scheduler = TaskScheduler(engine=engine)
        try:
            scheduler.begin_iteration(1)
            span = telemetry.start_span("iteration", "session")
            for _ in range(3):
                scheduler.submit(Task(kind=TaskKind.FEATURE_EXTRACTION, duration=0.5))
            scheduler.run_background_window(4.0)
            span.end()
        finally:
            scheduler.shutdown()
        executed = task_spans(sink)
        assert executed
        # The window slices execute on pool workers, not the dispatcher.
        assert all(record["thread"] != "MainThread" for record in executed)
        # ...and still parent to the main thread's iteration span.
        assert {record["parent"] for record in executed} == {span.span_id}

    def test_worker_context_does_not_leak_between_tasks(self, sink):
        """A task created with no active span must execute with a None parent
        even when the worker previously ran a context-carrying task."""
        engine = ThreadPoolEngine(num_workers=1, time_scale=SCALE, checkpoint_interval=0.25)
        scheduler = TaskScheduler(engine=engine)
        try:
            scheduler.begin_iteration(1)
            with telemetry.span("iteration", "session"):
                scheduler.submit(Task(kind=TaskKind.FEATURE_EXTRACTION, duration=0.3))
            orphan = Task(kind=TaskKind.FEATURE_EXTRACTION, duration=0.3)
            scheduler.submit(orphan)
            scheduler.run_background_window(2.0)
        finally:
            scheduler.shutdown()
        orphan_spans = [
            record for record in task_spans(sink) if record["attrs"]["task_id"] == orphan.task_id
        ]
        assert orphan_spans
        assert all(record["parent"] is None for record in orphan_spans)


class TestSimulatedEnginePropagation:
    def test_foreground_task_nests_under_active_span(self, sink):
        scheduler = TaskScheduler()
        scheduler.begin_iteration(1)
        with telemetry.span("iteration", "session") as span:
            scheduler.run_foreground(Task(kind=TaskKind.SAMPLE_SELECTION, duration=1.0))
        (record,) = task_spans(sink)
        assert record["name"] == "task:sample_selection"
        assert record["cat"] == "scheduler"
        assert record["parent"] == span.span_id
        assert record["attrs"]["phase"] == "foreground"

    def test_window_slices_carry_phase_and_remaining(self, sink):
        scheduler = TaskScheduler()
        scheduler.begin_iteration(1)
        scheduler.submit(Task(kind=TaskKind.MODEL_TRAINING, duration=2.0))
        scheduler.run_background_window(5.0)
        (record,) = task_spans(sink)
        assert record["attrs"]["phase"] == "window"
        assert record["attrs"]["remaining"] == 2.0
