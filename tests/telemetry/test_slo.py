"""Tests for per-iteration SLO accounting."""

import pytest

from repro.scheduler.scheduler import IterationLatency
from repro.telemetry.slo import SLOAccountant


def _record(iteration, visible, by_kind=None):
    record = IterationLatency(iteration=iteration)
    for kind, duration in (by_kind or {"sample_selection": visible}).items():
        record.add_visible(kind, duration)
    return record


class TestSLOAccountant:
    def test_within_budget(self):
        accountant = SLOAccountant(budget_s=10.0)
        verdict = accountant.record(_record(1, 4.0))
        assert not verdict.violated
        assert verdict.overshoot == 0.0
        assert accountant.violations == 0

    def test_violation_and_overshoot(self):
        accountant = SLOAccountant(budget_s=10.0)
        verdict = accountant.record(_record(1, 12.5))
        assert verdict.violated
        assert verdict.overshoot == pytest.approx(2.5)
        assert accountant.violations == 1

    def test_no_budget_records_without_verdicts(self):
        accountant = SLOAccountant(budget_s=None)
        verdict = accountant.record(_record(1, 100.0))
        assert not verdict.violated
        assert verdict.budget is None
        assert accountant.iterations == 1

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError, match="must be > 0"):
            SLOAccountant(budget_s=0.0)
        with pytest.raises(ValueError, match="must be > 0"):
            SLOAccountant(budget_s=-1.0)

    def test_worst_tracks_highest_latency(self):
        accountant = SLOAccountant(budget_s=5.0)
        for iteration, visible in ((1, 3.0), (2, 9.0), (3, 6.0)):
            accountant.record(_record(iteration, visible))
        worst = accountant.worst()
        assert worst.iteration == 2
        assert worst.visible_latency == 9.0

    def test_summary_shape(self):
        accountant = SLOAccountant(budget_s=5.0)
        accountant.record(_record(1, 3.0, {"sample_selection": 1.0, "model_training": 2.0}))
        accountant.record(_record(2, 7.0))
        summary = accountant.summary()
        assert summary["budget_s"] == 5.0
        assert summary["iterations"] == 2
        assert summary["violations"] == 1
        assert summary["total_visible_s"] == pytest.approx(10.0)
        assert summary["worst"]["iteration"] == 2
        assert len(summary["per_iteration"]) == 2
        record = summary["per_iteration"][0]
        assert record["type"] == "slo"
        assert record["visible_by_kind"] == {"sample_selection": 1.0, "model_training": 2.0}

    def test_empty_summary(self):
        summary = SLOAccountant(budget_s=1.0).summary()
        assert summary["iterations"] == 0
        assert summary["worst"] is None
