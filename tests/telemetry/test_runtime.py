"""Tests for the run lifecycle and the module facade."""

import json
import logging

import pytest

from repro import telemetry
from repro.exceptions import TelemetryError
from repro.scheduler.scheduler import IterationLatency


class TestRunLifecycle:
    def test_one_run_per_process(self, tmp_path):
        telemetry.start_run()
        with pytest.raises(TelemetryError, match="already active"):
            telemetry.start_run()
        telemetry.shutdown()
        # After shutdown a new run can start.
        run = telemetry.start_run()
        assert telemetry.active_run() is run

    def test_close_is_idempotent_and_releases_global(self):
        run = telemetry.start_run()
        run.close()
        run.close()
        assert telemetry.active_run() is None
        assert run.closed

    def test_close_writes_artifacts(self, tmp_path):
        run = telemetry.start_run(trace_dir=tmp_path, slo_budget_s=5.0, label="unit")
        with telemetry.span("work", "app"):
            pass
        record = IterationLatency(iteration=1)
        record.add_visible("sample_selection", 8.0)
        run.record_iteration(record)
        run.close()

        doc = json.loads((tmp_path / "metrics.json").read_text())
        assert doc["label"] == "unit"
        assert doc["metrics"]["counters"]["session.iterations"] == 1
        assert doc["metrics"]["counters"]["session.slo_violations"] == 1
        assert doc["slo"]["violations"] == 1

        jsonl = [json.loads(line) for line in (tmp_path / "trace.jsonl").read_text().splitlines()]
        types = {r["type"] for r in jsonl}
        assert types == {"span", "slo"}
        assert json.loads((tmp_path / "chrome_trace.json").read_text())["traceEvents"]

    def test_record_iteration_feeds_metrics(self):
        run = telemetry.start_run(slo_budget_s=100.0)
        record = IterationLatency(iteration=1)
        record.add_visible("sample_selection", 1.0)
        run.record_iteration(record)
        snapshot = run.metrics.snapshot()
        assert snapshot["counters"]["session.iterations"] == 1
        assert "session.slo_violations" not in snapshot["counters"]
        assert snapshot["histograms"]["session.visible_latency_s"]["count"] == 1
        assert "VIOLATED" not in run.report()


class TestFacadeDisabled:
    def test_null_objects_when_no_run(self):
        assert not telemetry.enabled()
        assert telemetry.span("x") is telemetry.NULL_SPAN
        assert telemetry.start_span("x") is telemetry.NULL_SPAN
        assert telemetry.current_span() is None
        assert telemetry.capture_context() is None
        assert telemetry.counter("c") is telemetry.NULL_COUNTER
        assert telemetry.gauge("g") is telemetry.NULL_GAUGE
        assert telemetry.histogram("h") is telemetry.NULL_HISTOGRAM
        with telemetry.activate(None):
            pass


class TestFacadeEnabled:
    def test_span_routes_to_active_run(self):
        sink = telemetry.MemorySink()
        run = telemetry.start_run(extra_sinks=(sink,))
        assert telemetry.enabled()
        with telemetry.span("outer", "app", answer=42) as outer:
            assert telemetry.current_span() is outer
            assert telemetry.capture_context() is outer
        assert sink.spans[0]["attrs"] == {"answer": 42}
        assert run.metrics.snapshot()["histograms"] == {}

    def test_span_metric_feeds_named_histogram(self):
        run = telemetry.start_run()
        with telemetry.span("timed", "app", metric="app.seconds"):
            pass
        assert run.metrics.snapshot()["histograms"]["app.seconds"]["count"] == 1

    def test_start_span_is_active_until_ended(self):
        telemetry.start_run()
        span = telemetry.start_span("iteration", "session")
        assert telemetry.current_span() is span
        span.end()
        assert telemetry.current_span() is None


class TestConfigureLogging:
    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            telemetry.configure_logging("chatty")

    def test_sets_root_level(self):
        telemetry.configure_logging("debug")
        assert logging.getLogger().level == logging.DEBUG
        telemetry.configure_logging("warning")
        assert logging.getLogger().level == logging.WARNING
