"""End-to-end telemetry: session integration, bit-identity, CLI surface."""

import json

import pytest

from repro.cli import main as cli_main
from repro.datasets.catalog import build_dataset
from repro.experiments.runner import RunnerConfig, SessionRunner


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("deer", seed=0)


def _run(dataset, trace_dir=None, slo=None, steps=3):
    runner = SessionRunner(
        dataset,
        RunnerConfig(
            num_steps=steps,
            strategy="ve-full",
            seed=0,
            trace_dir=trace_dir,
            visible_latency_slo_s=slo,
        ),
    )
    try:
        runner.run()
        session = runner.vocal.session
        fingerprint = [
            (
                record.iteration,
                record.visible_latency,
                record.background_time_used,
                record.background_idle_time,
                tuple(sorted(record.visible_by_kind.items())),
            )
            for record in session.scheduler.iteration_records()
        ]
        slo_results = session.slo_results()
        report = session.telemetry_report()
        return fingerprint, slo_results, report
    finally:
        runner.close()


class TestBitIdentity:
    def test_latency_records_identical_with_telemetry_on(self, dataset, tmp_path):
        """Telemetry is an observer: the scheduler's latency records must be
        float-bit-identical with tracing fully enabled vs. disabled."""
        baseline, slo_off, __ = _run(dataset)
        traced, slo_on, __ = _run(dataset, trace_dir=str(tmp_path / "trace"), slo=1.0)
        assert traced == baseline  # exact ==, no tolerance
        assert slo_off == []
        assert len(slo_on) == len(traced)


class TestSessionIntegration:
    def test_trace_artifacts_and_slo_surface(self, dataset, tmp_path):
        trace_dir = tmp_path / "trace"
        fingerprint, slo_results, report = _run(dataset, trace_dir=str(trace_dir), slo=0.001)

        # Session-level SLO accounting: the tiny budget violates everywhere.
        assert all(verdict.violated for verdict in slo_results)
        assert "VIOLATED" in report

        # The JSONL sink carries both spans and the per-iteration verdicts.
        records = [
            json.loads(line)
            for line in (trace_dir / "trace.jsonl").read_text().splitlines()
        ]
        spans = [r for r in records if r["type"] == "span"]
        verdicts = [r for r in records if r["type"] == "slo"]
        assert len(verdicts) == len(fingerprint)
        assert all(v["violated"] for v in verdicts)
        # Session spans wrap the iteration; scheduler task spans nest under it.
        iteration_spans = {s["id"] for s in spans if s["name"] == "iteration"}
        task_parents = {s["parent"] for s in spans if s["name"].startswith("task:")}
        assert task_parents & iteration_spans
        # The SLO verdicts mirror the scheduler's records bit-exactly.
        by_iteration = {v["iteration"]: v for v in verdicts}
        for iteration, visible, *_ in fingerprint:
            assert by_iteration[iteration]["visible_latency_s"] == visible

        # metrics.json holds the closed run's snapshot for the report path.
        doc = json.loads((trace_dir / "metrics.json").read_text())
        assert doc["slo"]["violations"] == len(fingerprint)
        assert doc["metrics"]["counters"]["session.iterations"] == len(fingerprint)


class TestCLI:
    def test_explore_prints_slo_verdicts_and_report_renders(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "trace")
        code = cli_main(
            [
                "explore",
                "--dataset", "deer",
                "--steps", "2",
                "--strategy", "ve-full",
                "--trace-dir", trace_dir,
                "--slo", "0.001",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "SLO (0.001 s/iteration): 2 of 2 iterations violated" in out
        assert f"telemetry written to {trace_dir}" in out

        code = cli_main(["report", "--trace-dir", trace_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "== telemetry report:" in out
        assert "VIOLATED" in out
        assert "session.iterations" in out

    def test_report_on_empty_dir_exits_with_error(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["report", "--trace-dir", str(tmp_path / "nothing")])
