"""Tests for the tracing core: spans, nesting, thread propagation."""

import threading

import pytest

from repro.telemetry.exporters import MemorySink
from repro.telemetry.tracing import NULL_SPAN, Tracer, current_span


@pytest.fixture
def tracer():
    tracer = Tracer()
    sink = MemorySink()
    tracer.add_sink(sink)
    tracer.sink = sink
    return tracer


class TestSpanBasics:
    def test_with_block_records_span(self, tracer):
        with tracer.span("work", "app", attributes={"k": 1}):
            pass
        (record,) = tracer.sink.spans
        assert record["name"] == "work"
        assert record["cat"] == "app"
        assert record["attrs"] == {"k": 1}
        assert record["dur"] >= 0.0
        assert record["parent"] is None

    def test_nesting_sets_parent_ids(self, tracer):
        with tracer.span("outer", "app") as outer:
            assert current_span() is outer
            with tracer.span("inner", "app") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
        by_name = {record["name"]: record for record in tracer.sink.spans}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None

    def test_parent_captured_at_creation(self, tracer):
        with tracer.span("outer", "app") as outer:
            span = tracer.span("manual", "app")
        # Created inside `outer`, entered after it ended: parent is still outer.
        with span:
            pass
        assert tracer.sink.spans[-1]["parent"] == outer.span_id

    def test_end_is_idempotent(self, tracer):
        span = tracer.span("once", "app").__enter__()
        span.end()
        span.end()
        assert len(tracer.sink.spans) == 1

    def test_set_attribute(self, tracer):
        with tracer.span("attrs", "app") as span:
            span.set_attribute("added", "later")
        assert tracer.sink.spans[0]["attrs"]["added"] == "later"

    def test_exception_still_closes_span(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom", "app"):
                raise RuntimeError("boom")
        assert len(tracer.sink.spans) == 1
        assert current_span() is None

    def test_metric_histogram_receives_duration(self, tracer):
        from repro.telemetry.metrics import Histogram

        histogram = Histogram("test.seconds")
        with tracer.span("timed", "app", metric=histogram):
            pass
        assert histogram.summary()["count"] == 1


class TestThreadPropagation:
    def test_threads_do_not_inherit_spans_implicitly(self, tracer):
        seen = []
        with tracer.span("main-only", "app"):
            worker = threading.Thread(target=lambda: seen.append(current_span()))
            worker.start()
            worker.join()
        assert seen == [None]

    def test_activate_carries_context_to_worker(self, tracer):
        captured = {}

        def worker(context):
            with tracer.activate(context):
                with tracer.span("child", "app"):
                    pass
            captured["after"] = current_span()

        with tracer.span("parent", "app") as parent:
            thread = threading.Thread(target=worker, args=(parent,))
            thread.start()
            thread.join()
        assert captured["after"] is None
        by_name = {record["name"]: record for record in tracer.sink.spans}
        assert by_name["child"]["parent"] == by_name["parent"]["id"]
        assert by_name["child"]["thread"] != by_name["parent"]["thread"]


class TestNullSpan:
    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.set_attribute("ignored", 1)
            span.end()
        assert NULL_SPAN.span_id is None
