"""Tests for the Model Manager."""

import pytest

from repro.exceptions import InsufficientLabelsError, ModelError
from repro.types import ClipSpec, Label


def add_labels(storage, corpus, count, start_index=0):
    """Label the first ``count`` videos (from start_index) with their true class."""
    videos = corpus.videos()[start_index : start_index + count]
    for video in videos:
        clip = ClipSpec(video.vid, 0.0, 1.0)
        storage.labels.add(Label(video.vid, 0.0, 1.0, corpus.dominant_label(clip)))
    return videos


class TestTraining:
    def test_cannot_train_without_labels(self, managed_stack):
        __, __, model_manager = managed_stack
        assert not model_manager.can_train()
        with pytest.raises(InsufficientLabelsError):
            model_manager.train("r3d")

    def test_cannot_train_with_single_class(self, managed_stack, small_corpus):
        storage, __, model_manager = managed_stack
        video = small_corpus.videos()[0]
        storage.labels.add(Label(video.vid, 0.0, 1.0, "walk"))
        storage.labels.add(Label(video.vid, 1.0, 2.0, "walk"))
        assert not model_manager.can_train()

    def test_train_registers_model(self, managed_stack, small_corpus):
        storage, __, model_manager = managed_stack
        add_labels(storage, small_corpus, 9)
        info = model_manager.train("r3d", at_time=12.5)
        assert info.feature_name == "r3d"
        assert info.version == 1
        assert info.num_labels == 9
        assert info.created_at == 12.5
        assert model_manager.has_model("r3d")

    def test_train_if_possible_returns_none_without_labels(self, managed_stack):
        __, __, model_manager = managed_stack
        assert model_manager.train_if_possible("r3d") is None

    def test_retraining_bumps_version(self, managed_stack, small_corpus):
        storage, __, model_manager = managed_stack
        add_labels(storage, small_corpus, 6)
        model_manager.train("r3d")
        add_labels(storage, small_corpus, 6, start_index=6)
        info = model_manager.train("r3d")
        assert info.version == 2
        assert info.num_labels == 12

    def test_label_limit_restricts_training_set(self, managed_stack, small_corpus):
        storage, __, model_manager = managed_stack
        add_labels(storage, small_corpus, 12)
        info = model_manager.train("r3d", label_limit=6)
        assert info.num_labels == 6

    def test_label_limit_single_class_refuses(self, managed_stack, small_corpus):
        storage, __, model_manager = managed_stack
        add_labels(storage, small_corpus, 12)
        # The first label alone covers one class only.
        assert model_manager.train_if_possible("r3d", label_limit=1) is None

    def test_models_per_feature_are_independent(self, managed_stack, small_corpus):
        storage, __, model_manager = managed_stack
        add_labels(storage, small_corpus, 9)
        model_manager.train("r3d")
        assert model_manager.has_model("r3d")
        assert not model_manager.has_model("clip")


class TestServing:
    def test_latest_model_missing_raises(self, managed_stack):
        __, __, model_manager = managed_stack
        with pytest.raises(ModelError):
            model_manager.latest_model("r3d")

    def test_predict_clips(self, managed_stack, small_corpus):
        storage, __, model_manager = managed_stack
        add_labels(storage, small_corpus, 12)
        model_manager.train("r3d")
        clips = [ClipSpec(v.vid, 4.0, 5.0) for v in small_corpus.videos()[12:16]]
        predictions = model_manager.predict_clips("r3d", clips)
        assert len(predictions) == 4
        for clip, prediction in zip(clips, predictions):
            assert prediction.vid == clip.vid
            assert prediction.feature_name == "r3d"
            assert set(prediction.probabilities) == {"walk", "eat", "rest"}
            assert sum(prediction.probabilities.values()) == pytest.approx(1.0, abs=1e-6)

    def test_predict_clips_empty(self, managed_stack, small_corpus):
        storage, __, model_manager = managed_stack
        add_labels(storage, small_corpus, 9)
        model_manager.train("r3d")
        assert model_manager.predict_clips("r3d", []) == []

    def test_predictions_better_than_chance(self, managed_stack, small_corpus):
        storage, __, model_manager = managed_stack
        add_labels(storage, small_corpus, 18)
        model_manager.train("r3d")
        clips = [ClipSpec(v.vid, 4.0, 5.0) for v in small_corpus.videos()[18:]]
        truth = [small_corpus.dominant_label(c) for c in clips]
        predictions = model_manager.predict_clips("r3d", clips)
        correct = sum(1 for p, t in zip(predictions, truth) if p.top_label == t)
        assert correct / len(truth) > 1.0 / 3.0


class TestEvaluation:
    def test_evaluate_on_heldout_clips(self, managed_stack, small_corpus):
        storage, __, model_manager = managed_stack
        add_labels(storage, small_corpus, 18)
        model_manager.train("r3d")
        clips = [ClipSpec(v.vid, 4.0, 5.0) for v in small_corpus.videos()[18:]]
        truth = [small_corpus.dominant_label(c) for c in clips]
        f1 = model_manager.evaluate("r3d", clips, truth)
        assert 0.0 <= f1 <= 1.0
        assert f1 > 0.3

    def test_evaluate_empty_set(self, managed_stack, small_corpus):
        storage, __, model_manager = managed_stack
        add_labels(storage, small_corpus, 9)
        model_manager.train("r3d")
        assert model_manager.evaluate("r3d", [], []) == 0.0

    def test_evaluate_length_mismatch(self, managed_stack, small_corpus):
        storage, __, model_manager = managed_stack
        add_labels(storage, small_corpus, 9)
        model_manager.train("r3d")
        with pytest.raises(ModelError):
            model_manager.evaluate("r3d", [ClipSpec(0, 0.0, 1.0)], [])

    def test_cross_validate(self, managed_stack, small_corpus):
        storage, __, model_manager = managed_stack
        add_labels(storage, small_corpus, 18)
        result = model_manager.cross_validate("r3d")
        assert 0.0 <= result.mean_f1 <= 1.0
        assert result.num_examples == 18

    def test_cross_validate_without_labels(self, managed_stack):
        __, __, model_manager = managed_stack
        with pytest.raises(InsufficientLabelsError):
            model_manager.cross_validate("r3d")

    def test_vocabulary_required(self, managed_stack):
        from repro.models.model_manager import ModelManager

        storage, feature_manager, __ = managed_stack
        with pytest.raises(ModelError):
            ModelManager(feature_manager, storage.labels, storage.models, [])
