"""Tests for cross-validation utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InsufficientLabelsError
from repro.models.validation import cross_validate_macro_f1, stratified_folds


def make_data(n_per_class=12, num_classes=3, dim=8, seed=0, spread=4.0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_classes, dim)) * spread
    features, labels = [], []
    for index in range(num_classes):
        features.append(centers[index] + rng.standard_normal((n_per_class, dim)))
        labels.extend([f"c{index}"] * n_per_class)
    return np.vstack(features), labels


class TestStratifiedFolds:
    def test_folds_partition_examples(self):
        labels = ["a"] * 9 + ["b"] * 6
        folds = stratified_folds(labels, 3, np.random.default_rng(0))
        all_indices = sorted(np.concatenate(folds).tolist())
        assert all_indices == list(range(15))

    def test_each_fold_contains_each_class(self):
        labels = ["a"] * 9 + ["b"] * 9
        folds = stratified_folds(labels, 3, np.random.default_rng(0))
        for fold in folds:
            fold_labels = {labels[i] for i in fold}
            assert fold_labels == {"a", "b"}

    def test_minimum_two_folds(self):
        with pytest.raises(InsufficientLabelsError):
            stratified_folds(["a", "b"], 1, np.random.default_rng(0))

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=6, max_size=60),
        st.integers(min_value=2, max_value=4),
    )
    def test_partition_property(self, labels, num_folds):
        folds = stratified_folds(labels, num_folds, np.random.default_rng(1))
        flattened = sorted(np.concatenate(folds).tolist()) if folds else []
        assert flattened == list(range(len(labels)))


class TestCrossValidation:
    def test_separable_data_scores_high(self):
        features, labels = make_data()
        result = cross_validate_macro_f1(features, labels, num_folds=3)
        assert result.mean_f1 > 0.8
        assert len(result.fold_scores) == 3
        assert result.classes_evaluated == ("c0", "c1", "c2")

    def test_random_labels_score_low(self):
        rng = np.random.default_rng(0)
        features = rng.standard_normal((60, 8))
        labels = [f"c{i % 3}" for i in range(60)]
        result = cross_validate_macro_f1(features, labels, num_folds=3)
        assert result.mean_f1 < 0.6

    def test_rare_classes_excluded(self):
        features, labels = make_data(n_per_class=10, num_classes=2)
        features = np.vstack([features, np.zeros((1, features.shape[1]))])
        labels = labels + ["rare"]
        result = cross_validate_macro_f1(features, labels, min_labels_per_class=3)
        assert "rare" not in result.classes_evaluated
        assert result.num_examples == 20

    def test_single_class_rejected(self):
        features = np.zeros((10, 4))
        labels = ["a"] * 10
        with pytest.raises(InsufficientLabelsError):
            cross_validate_macro_f1(features, labels)

    def test_too_few_labels_per_class_rejected(self):
        features = np.zeros((4, 4))
        labels = ["a", "a", "b", "b"]
        with pytest.raises(InsufficientLabelsError):
            cross_validate_macro_f1(features, labels, min_labels_per_class=3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(InsufficientLabelsError):
            cross_validate_macro_f1(np.zeros((3, 2)), ["a", "b"])

    def test_scores_bounded(self):
        features, labels = make_data(seed=3)
        result = cross_validate_macro_f1(features, labels)
        assert all(0.0 <= score <= 1.0 for score in result.fold_scores)
        assert 0.0 <= result.mean_f1 <= 1.0


class TestIncrementalFoldAssigner:
    def test_assignment_stable_under_appends(self):
        from repro.models.validation import IncrementalFoldAssigner

        assigner = IncrementalFoldAssigner(3, seed=0)
        labels = ["a", "b", "a", "c", "b", "a"]
        first = assigner.extend(labels)
        extended = assigner.extend(labels + ["c", "a", "b"])
        np.testing.assert_array_equal(extended[: len(labels)], first)

    def test_per_class_balance_within_one(self):
        from collections import Counter
        from repro.models.validation import IncrementalFoldAssigner

        assigner = IncrementalFoldAssigner(3, seed=1)
        labels = ["a"] * 10 + ["b"] * 7 + ["c"] * 3
        assignment = assigner.extend(labels)
        for name in ("a", "b", "c"):
            counts = Counter(
                assignment[i] for i, label in enumerate(labels) if label == name
            )
            folds = [counts.get(f, 0) for f in range(3)]
            assert max(folds) - min(folds) <= 1

    def test_requires_two_folds(self):
        from repro.models.validation import IncrementalFoldAssigner

        with pytest.raises(InsufficientLabelsError):
            IncrementalFoldAssigner(1)

    def test_prefix_query_returns_prefix(self):
        from repro.models.validation import IncrementalFoldAssigner

        assigner = IncrementalFoldAssigner(2, seed=0)
        labels = ["a", "b"] * 6
        full = assigner.extend(labels)
        prefix = assigner.extend(labels[:4])
        np.testing.assert_array_equal(prefix, full[:4])


class TestWarmCrossValidation:
    def test_warm_result_matches_cold_estimate_on_separable_data(self):
        from repro.models.validation import cross_validate_macro_f1_warm

        features, labels = make_data(n_per_class=15)
        cold = cross_validate_macro_f1(features, labels, rng=np.random.default_rng(0))
        warm = cross_validate_macro_f1_warm(
            features, labels, rng=np.random.default_rng(0)
        )
        assert warm.result.classes_evaluated == cold.classes_evaluated
        assert warm.result.num_examples == cold.num_examples
        assert abs(warm.result.mean_f1 - cold.mean_f1) < 0.1
        assert warm.warm_started_folds == 0
        assert set(warm.fold_models) == {0, 1, 2}

    def test_previous_fold_models_are_reused(self):
        from repro.models.validation import cross_validate_macro_f1_warm

        features, labels = make_data(n_per_class=15)
        first = cross_validate_macro_f1_warm(
            features, labels, rng=np.random.default_rng(0)
        )
        second = cross_validate_macro_f1_warm(
            features,
            labels,
            rng=np.random.default_rng(1),
            previous_fold_models=first.fold_models,
            warm_tolerance=1e-5,
        )
        assert second.warm_started_folds == len(second.fold_models)
        assert abs(second.result.mean_f1 - first.result.mean_f1) < 0.1

    def test_fold_assignment_controls_split(self):
        from repro.models.validation import (
            IncrementalFoldAssigner,
            cross_validate_macro_f1_warm,
        )

        features, labels = make_data(n_per_class=15)
        assigner = IncrementalFoldAssigner(3, seed=0)
        assignment = assigner.extend(labels)
        one = cross_validate_macro_f1_warm(
            features, labels, fold_assignment=assignment
        )
        two = cross_validate_macro_f1_warm(
            features, labels, fold_assignment=assignment
        )
        # Identical assignment and no warm seeds in round one vs. warm seeds
        # in round two of the same data: scores stay essentially identical.
        assert one.result.fold_scores == two.result.fold_scores

    def test_mismatched_assignment_length_rejected(self):
        from repro.models.validation import cross_validate_macro_f1_warm

        features, labels = make_data()
        with pytest.raises(InsufficientLabelsError):
            cross_validate_macro_f1_warm(
                features, labels, fold_assignment=np.zeros(3, dtype=np.int64)
            )
