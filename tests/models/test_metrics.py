"""Tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.models.metrics import (
    accuracy,
    confusion_matrix,
    macro_f1,
    multilabel_macro_f1,
    per_class_metrics,
    smax_diversity,
)

CLASSES = ["a", "b", "c"]


class TestConfusionMatrix:
    def test_perfect_predictions_are_diagonal(self):
        truth = ["a", "b", "c", "a"]
        matrix = confusion_matrix(truth, truth, CLASSES)
        assert matrix.tolist() == [[2, 0, 0], [0, 1, 0], [0, 0, 1]]

    def test_misclassification_off_diagonal(self):
        matrix = confusion_matrix(["a", "a"], ["b", "a"], CLASSES)
        assert matrix[0, 1] == 1
        assert matrix[0, 0] == 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(["a"], ["a", "b"], CLASSES)

    def test_labels_outside_vocabulary_ignored(self):
        matrix = confusion_matrix(["z"], ["a"], CLASSES)
        assert matrix.sum() == 0


class TestPerClassMetrics:
    def test_perfect_scores(self):
        truth = ["a", "b", "c"]
        metrics = per_class_metrics(truth, truth, CLASSES)
        assert all(m.precision == 1.0 and m.recall == 1.0 and m.f1 == 1.0 for m in metrics)

    def test_absent_class_scores_zero(self):
        metrics = per_class_metrics(["a", "a"], ["a", "a"], CLASSES)
        by_label = {m.label: m for m in metrics}
        assert by_label["b"].f1 == 0.0
        assert by_label["b"].support == 0
        assert by_label["a"].f1 == 1.0

    def test_precision_recall_breakdown(self):
        truth = ["a", "a", "b", "b"]
        predicted = ["a", "b", "b", "b"]
        by_label = {m.label: m for m in per_class_metrics(truth, predicted, ["a", "b"])}
        assert by_label["a"].precision == 1.0
        assert by_label["a"].recall == 0.5
        assert by_label["b"].precision == pytest.approx(2 / 3)
        assert by_label["b"].recall == 1.0


class TestMacroF1:
    def test_perfect(self):
        assert macro_f1(["a", "b", "c"], ["a", "b", "c"], CLASSES) == 1.0

    def test_all_wrong(self):
        assert macro_f1(["a", "a"], ["b", "b"], CLASSES) == 0.0

    def test_full_vocabulary_penalises_missing_classes(self):
        # Only class "a" appears; the other two contribute zero F1.
        assert macro_f1(["a", "a"], ["a", "a"], CLASSES) == pytest.approx(1 / 3)

    def test_empty_class_list(self):
        assert macro_f1(["a"], ["a"], []) == 0.0

    @given(
        st.lists(st.sampled_from(CLASSES), min_size=1, max_size=50),
        st.lists(st.sampled_from(CLASSES), min_size=1, max_size=50),
    )
    def test_bounded_between_zero_and_one(self, truth, predicted):
        n = min(len(truth), len(predicted))
        value = macro_f1(truth[:n], predicted[:n], CLASSES)
        assert 0.0 <= value <= 1.0

    @given(st.lists(st.sampled_from(CLASSES), min_size=1, max_size=50))
    def test_perfect_prediction_upper_bounds_any_prediction(self, truth):
        perfect = macro_f1(truth, truth, CLASSES)
        flipped = ["a" if t != "a" else "b" for t in truth]
        assert macro_f1(truth, flipped, CLASSES) <= perfect + 1e-12


class TestAccuracy:
    def test_accuracy_values(self):
        assert accuracy(["a", "b"], ["a", "b"]) == 1.0
        assert accuracy(["a", "b"], ["a", "c"]) == 0.5
        assert accuracy([], []) == 0.0


class TestMultilabelMacroF1:
    def test_perfect(self):
        sets = [["a", "b"], ["c"]]
        assert multilabel_macro_f1(sets, sets, CLASSES) == 1.0

    def test_partial_overlap(self):
        truth = [["a", "b"], ["b"]]
        predicted = [["a"], ["b"]]
        value = multilabel_macro_f1(truth, predicted, ["a", "b"])
        # Class a: P=1, R=1 -> 1.0; class b: P=1, R=0.5 -> 2/3.
        assert value == pytest.approx((1.0 + 2 / 3) / 2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            multilabel_macro_f1([["a"]], [], ["a"])

    def test_empty_classes(self):
        assert multilabel_macro_f1([["a"]], [["a"]], []) == 0.0


class TestSmaxDiversity:
    def test_empty_is_zero(self):
        assert smax_diversity([]) == 0.0

    def test_uniform_distribution(self):
        assert smax_diversity(["a", "b", "c", "a", "b", "c"]) == pytest.approx(1 / 3)

    def test_single_class_is_one(self):
        assert smax_diversity(["a", "a", "a"]) == 1.0

    def test_accepts_count_mapping(self):
        assert smax_diversity({"a": 8, "b": 2}) == pytest.approx(0.8)

    @given(st.lists(st.sampled_from(CLASSES), min_size=1, max_size=60))
    def test_bounds(self, labels):
        value = smax_diversity(labels)
        assert 1.0 / len(CLASSES) <= value + 1e-12
        assert value <= 1.0
