"""Tests for softmax regression and the one-vs-rest multi-label model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InsufficientLabelsError, NotFittedError
from repro.models.linear import SoftmaxRegression
from repro.models.multilabel import BinaryLogisticRegression, OneVsRestClassifier


def separable_data(n_per_class=30, num_classes=3, dim=10, seed=0, spread=4.0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_classes, dim)) * spread
    features, labels = [], []
    for index in range(num_classes):
        features.append(centers[index] + rng.standard_normal((n_per_class, dim)))
        labels.extend([f"class_{index}"] * n_per_class)
    return np.vstack(features), labels


class TestSoftmaxRegression:
    def test_requires_classes(self):
        with pytest.raises(InsufficientLabelsError):
            SoftmaxRegression([])

    def test_duplicate_classes_deduplicated(self):
        model = SoftmaxRegression(["a", "b", "a"])
        assert model.classes == ["a", "b"]
        assert model.num_classes == 2

    def test_fit_and_predict_separable(self):
        features, labels = separable_data()
        model = SoftmaxRegression([f"class_{i}" for i in range(3)])
        model.fit(features, labels)
        predictions = model.predict(features)
        accuracy = np.mean([p == t for p, t in zip(predictions, labels)])
        assert accuracy > 0.95

    def test_predict_proba_rows_sum_to_one(self):
        features, labels = separable_data()
        model = SoftmaxRegression([f"class_{i}" for i in range(3)]).fit(features, labels)
        probabilities = model.predict_proba(features[:10])
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(10), atol=1e-9)
        assert np.all(probabilities >= 0)

    def test_predict_before_fit_raises(self):
        model = SoftmaxRegression(["a", "b"])
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((1, 4)))
        with pytest.raises(NotFittedError):
            model.decision_scores(np.zeros((1, 4)))

    def test_vocabulary_larger_than_observed_classes(self):
        features, labels = separable_data(num_classes=2)
        model = SoftmaxRegression(["class_0", "class_1", "never_seen"]).fit(features, labels)
        probabilities = model.predict_proba(features[:5])
        assert probabilities.shape == (5, 3)
        # The unseen class should not dominate any prediction.
        assert all(p != "never_seen" for p in model.predict(features))

    def test_label_outside_vocabulary_rejected(self):
        model = SoftmaxRegression(["a", "b"])
        with pytest.raises(InsufficientLabelsError):
            model.fit(np.zeros((2, 3)), ["a", "z"])

    def test_dimension_mismatch_rejected(self):
        model = SoftmaxRegression(["a", "b"])
        with pytest.raises(InsufficientLabelsError):
            model.fit(np.zeros((3, 2)), ["a", "b"])

    def test_zero_examples_rejected(self):
        model = SoftmaxRegression(["a", "b"])
        with pytest.raises(InsufficientLabelsError):
            model.fit(np.zeros((0, 2)), [])

    def test_one_dimensional_input_promoted(self):
        features, labels = separable_data(dim=4)
        model = SoftmaxRegression([f"class_{i}" for i in range(3)]).fit(features, labels)
        single = model.predict_proba(features[0])
        assert single.shape == (1, 3)

    def test_constant_feature_column_handled(self):
        rng = np.random.default_rng(0)
        features = np.hstack([rng.standard_normal((40, 3)), np.ones((40, 1))])
        labels = ["a" if row[0] > 0 else "b" for row in features]
        model = SoftmaxRegression(["a", "b"]).fit(features, labels)
        assert len(model.predict(features)) == 40

    def test_decision_scores_argmax_matches_predictions(self):
        features, labels = separable_data()
        model = SoftmaxRegression([f"class_{i}" for i in range(3)]).fit(features, labels)
        scores = model.decision_scores(features[:20])
        from_scores = [model.classes[i] for i in scores.argmax(axis=1)]
        assert from_scores == model.predict(features[:20])

    def test_regularization_shrinks_weights(self):
        features, labels = separable_data()
        weak = SoftmaxRegression([f"class_{i}" for i in range(3)], l2_regularization=1e-4).fit(
            features, labels
        )
        strong = SoftmaxRegression([f"class_{i}" for i in range(3)], l2_regularization=10.0).fit(
            features, labels
        )
        assert np.linalg.norm(strong.get_parameters()) < np.linalg.norm(weak.get_parameters())

    def test_parameter_roundtrip(self):
        features, labels = separable_data(dim=6)
        model = SoftmaxRegression([f"class_{i}" for i in range(3)]).fit(features, labels)
        parameters = model.get_parameters()
        clone = SoftmaxRegression([f"class_{i}" for i in range(3)])
        clone.set_parameters(parameters, feature_dim=6)
        np.testing.assert_allclose(
            clone.predict_proba(features[:7]), model.predict_proba(features[:7])
        )

    def test_parameter_roundtrip_wrong_length(self):
        model = SoftmaxRegression(["a", "b"])
        with pytest.raises(NotFittedError):
            model.set_parameters(np.zeros(5), feature_dim=6)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=3, max_value=8))
    def test_probabilities_valid_for_random_problems(self, num_classes, dim):
        features, labels = separable_data(n_per_class=10, num_classes=num_classes, dim=dim, seed=1)
        model = SoftmaxRegression([f"class_{i}" for i in range(num_classes)]).fit(features, labels)
        probabilities = model.predict_proba(features)
        assert probabilities.shape == (len(labels), num_classes)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-8)


class TestBinaryLogisticRegression:
    def test_fit_and_predict(self):
        rng = np.random.default_rng(0)
        features = rng.standard_normal((60, 5))
        targets = (features[:, 0] > 0).astype(float)
        model = BinaryLogisticRegression().fit(features, targets)
        probabilities = model.predict_proba(features)
        accuracy = np.mean((probabilities > 0.5) == targets)
        assert accuracy > 0.9

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            BinaryLogisticRegression().predict_proba(np.zeros((1, 3)))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InsufficientLabelsError):
            BinaryLogisticRegression().fit(np.zeros((3, 2)), np.zeros(2))

    def test_empty_rejected(self):
        with pytest.raises(InsufficientLabelsError):
            BinaryLogisticRegression().fit(np.zeros((0, 2)), np.zeros(0))


class TestOneVsRest:
    def build_multilabel_data(self, seed=0):
        rng = np.random.default_rng(seed)
        features = rng.standard_normal((80, 6))
        label_sets = []
        for row in features:
            labels = []
            if row[0] > 0:
                labels.append("car")
            if row[1] > 0:
                labels.append("person")
            if not labels:
                labels.append("empty")
            label_sets.append(labels)
        return features, label_sets

    def test_fit_and_predict_sets(self):
        features, label_sets = self.build_multilabel_data()
        model = OneVsRestClassifier(["car", "person", "empty"]).fit(features, label_sets)
        predictions = model.predict(features)
        assert len(predictions) == len(label_sets)
        assert all(isinstance(p, list) and p for p in predictions)

    def test_probabilities_shape_and_range(self):
        features, label_sets = self.build_multilabel_data()
        model = OneVsRestClassifier(["car", "person", "empty"]).fit(features, label_sets)
        probabilities = model.predict_proba(features[:9])
        assert probabilities.shape == (9, 3)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_class_never_positive_falls_back_to_base_rate(self):
        features, label_sets = self.build_multilabel_data()
        model = OneVsRestClassifier(["car", "person", "ghost"]).fit(features, label_sets)
        probabilities = model.predict_proba(features[:5])
        np.testing.assert_allclose(probabilities[:, 2], 0.0, atol=1e-12)

    def test_requires_classes_and_examples(self):
        with pytest.raises(InsufficientLabelsError):
            OneVsRestClassifier([])
        with pytest.raises(InsufficientLabelsError):
            OneVsRestClassifier(["a"]).fit(np.zeros((0, 2)), [])

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            OneVsRestClassifier(["a"]).predict_proba(np.zeros((1, 2)))


class TestEncodeLabels:
    def test_vectorized_encoding_matches_vocabulary_order(self):
        model = SoftmaxRegression(["walk", "eat", "rest"])
        encoded = model.encode_labels(["rest", "walk", "eat", "walk"])
        assert encoded.tolist() == [2, 0, 1, 0]
        assert encoded.dtype == np.int64

    def test_empty_input(self):
        model = SoftmaxRegression(["walk", "eat"])
        assert model.encode_labels([]).shape == (0,)

    def test_unknown_labels_all_named_in_error(self):
        model = SoftmaxRegression(["walk", "eat"])
        with pytest.raises(InsufficientLabelsError) as excinfo:
            model.encode_labels(["walk", "swim", "fly", "swim"])
        message = str(excinfo.value)
        assert "swim" in message and "fly" in message
        assert "walk" not in message.split("vocabulary")[0]

    def test_label_longer_than_any_vocabulary_entry(self):
        model = SoftmaxRegression(["a", "b"])
        with pytest.raises(InsufficientLabelsError):
            model.encode_labels(["a", "zzzzzzzzzz"])

    @given(st.lists(st.sampled_from(["c0", "c1", "c2", "c3"]), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_round_trips_through_class_list(self, labels):
        model = SoftmaxRegression(["c0", "c1", "c2", "c3"])
        encoded = model.encode_labels(labels)
        assert [model.classes[i] for i in encoded] == labels
