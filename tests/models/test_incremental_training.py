"""Tests for the incremental training engine.

Covers warm-start parity (cold and warm fits converge to the same predictor),
the design-matrix cache's hit/extension/rebuild transitions, the fast
cross-validation path (cached rounds, fold reuse), and the
``warm_start=False`` escape hatch.
"""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.models.linear import SoftmaxRegression
from repro.models.model_manager import ModelManager
from repro.types import ClipSpec, Label

from tests.conftest import build_stack, make_corpus


def make_dataset(seed, n=120, d=8, classes=("a", "b", "c")):
    """Seeded Gaussian blobs, one per class, linearly separable-ish."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 2.0, size=(len(classes), d))
    features, labels = [], []
    for i in range(n):
        which = i % len(classes)
        features.append(centers[which] + rng.normal(0.0, 1.0, size=d))
        labels.append(classes[which])
    return np.asarray(features), labels


def label_videos(storage, corpus, count, start=0):
    for video in corpus.videos()[start : start + count]:
        clip = ClipSpec(video.vid, 0.0, 1.0)
        storage.labels.add(Label(video.vid, 0.0, 1.0, corpus.dominant_label(clip)))


def build_managers(corpus, seed=0):
    """A warm and a cold model manager over the *same* storage and features."""
    storage, feature_manager, warm = build_stack(corpus, seed=seed)
    cold = ModelManager(
        feature_manager,
        storage.labels,
        storage.models,
        list(corpus.class_names),
        ModelConfig(warm_start=False),
        seed=seed,
    )
    return storage, feature_manager, warm, cold


class TestWarmStartParity:
    """Property tests: warm and cold fits agree on predictions."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_warm_fit_matches_cold_fit(self, seed):
        features, labels = make_dataset(seed)
        cold = SoftmaxRegression(("a", "b", "c")).fit(features, labels)
        # Warm start from a model trained on a prefix of the data.
        previous = SoftmaxRegression(("a", "b", "c")).fit(features[:90], labels[:90])
        initial = previous.initial_parameters_for(["a", "b", "c"], features.shape[1])
        warm = SoftmaxRegression(("a", "b", "c")).fit(
            features, labels, initial_parameters=initial
        )
        probe, __ = make_dataset(seed + 100, n=60)
        assert warm.predict(probe) == cold.predict(probe)
        np.testing.assert_allclose(
            warm.predict_proba(probe), cold.predict_proba(probe), atol=5e-3
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_vocabulary_growth_zero_pads_new_class(self, seed):
        features, labels = make_dataset(seed, classes=("a", "b"))
        previous = SoftmaxRegression(("a", "b")).fit(features, labels)
        grown_features, grown_labels = make_dataset(seed + 1, classes=("a", "b", "c"))
        initial = previous.initial_parameters_for(
            ["a", "b", "c"], grown_features.shape[1]
        )
        assert initial is not None
        assert initial.shape == (grown_features.shape[1] * 3 + 3,)
        # The new class's weight column and bias start from zero.
        weights = initial[: grown_features.shape[1] * 3].reshape(-1, 3)
        assert np.all(weights[:, 2] == 0.0)
        warm = SoftmaxRegression(("a", "b", "c")).fit(
            grown_features, grown_labels, initial_parameters=initial
        )
        cold = SoftmaxRegression(("a", "b", "c")).fit(grown_features, grown_labels)
        probe, __ = make_dataset(seed + 200, n=60, classes=("a", "b", "c"))
        agree = np.mean(
            [w == c for w, c in zip(warm.predict(probe), cold.predict(probe))]
        )
        assert agree >= 0.95

    def test_initial_parameters_for_rejects_incompatible(self):
        features, labels = make_dataset(0)
        model = SoftmaxRegression(("a", "b", "c"))
        assert model.initial_parameters_for(["a", "b"], features.shape[1]) is None
        model.fit(features, labels)
        assert model.initial_parameters_for(["a", "b"], features.shape[1] + 1) is None

    def test_change_of_basis_preserves_predictor(self):
        features, labels = make_dataset(3)
        model = SoftmaxRegression(("a", "b", "c")).fit(features, labels)
        # Re-express the parameters under shifted statistics and install them
        # verbatim in a fresh model that standardizes with those statistics:
        # the seed must describe *exactly* the same predictor.
        d = features.shape[1]
        mean = features.mean(axis=0) + 0.05
        scale = features.std(axis=0) * 1.1
        initial = model.initial_parameters_for(
            ["a", "b", "c"], d, standardization=(mean, scale)
        )
        reseeded = SoftmaxRegression(("a", "b", "c"))
        reseeded._weights = initial[: d * 3].reshape(d, 3)
        reseeded._bias = initial[d * 3 :]
        reseeded._feature_mean = mean
        reseeded._feature_scale = scale
        probe, __ = make_dataset(42, n=60)
        np.testing.assert_allclose(
            reseeded.predict_proba(probe), model.predict_proba(probe), atol=1e-12
        )

    def test_standardization_parameter_matches_internal_stats(self):
        features, labels = make_dataset(5)
        mean = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale < 1e-12] = 1.0
        explicit = SoftmaxRegression(("a", "b", "c")).fit(
            features, labels, standardization=(mean, scale)
        )
        implicit = SoftmaxRegression(("a", "b", "c")).fit(features, labels)
        probe, __ = make_dataset(6, n=40)
        np.testing.assert_allclose(
            explicit.predict_proba(probe), implicit.predict_proba(probe), atol=1e-6
        )


class TestManagerWarmStart:
    def test_retrain_uses_warm_start(self, small_corpus):
        storage, __, warm, __cold = build_managers(small_corpus)
        label_videos(storage, small_corpus, 9)
        warm.train("r3d")
        assert warm.stats.cold_trains == 1
        label_videos(storage, small_corpus, 9, start=9)
        warm.train("r3d")
        assert warm.stats.warm_trains == 1

    def test_escape_hatch_disables_warm_start(self, small_corpus):
        storage, __, __warm, cold = build_managers(small_corpus)
        label_videos(storage, small_corpus, 9)
        cold.train("r3d")
        label_videos(storage, small_corpus, 9, start=9)
        cold.train("r3d")
        assert cold.stats.warm_trains == 0
        assert cold.stats.cold_trains == 2
        assert cold.stats.design_rebuilds == 0  # cache never engaged

    def test_warm_and_cold_managers_agree(self, small_corpus):
        storage, feature_manager, warm, cold = build_managers(small_corpus)
        label_videos(storage, small_corpus, 12)
        warm.train("r3d")
        cold.train("r3d")
        label_videos(storage, small_corpus, 12, start=12)
        warm_info = warm.train("r3d")
        cold_info = cold.train("r3d")
        warm_model = warm.registry.get(warm_info.model_id)[0]
        cold_model = cold.registry.get(cold_info.model_id)[0]
        clips = [ClipSpec(v.vid, 0.0, 1.0) for v in small_corpus.videos()[24:30]]
        probe = feature_manager.matrix("r3d", clips)
        assert warm_model.predict(probe) == cold_model.predict(probe)

    def test_label_limit_prefix_matches_uncached_gather(self, small_corpus):
        storage, __, warm, cold = build_managers(small_corpus)
        label_videos(storage, small_corpus, 12)
        warm_matrix, warm_names = warm.training_design("r3d", label_limit=7)
        cold_matrix, cold_names = cold.training_design("r3d", label_limit=7)
        assert warm_names == cold_names
        np.testing.assert_array_equal(warm_matrix, cold_matrix)


class TestDesignCache:
    def test_hit_extension_rebuild_transitions(self, small_corpus):
        storage, feature_manager, warm, __ = build_managers(small_corpus)
        label_videos(storage, small_corpus, 9)
        warm.training_design("r3d")
        assert warm.stats.design_rebuilds == 1
        warm.training_design("r3d")
        assert warm.stats.design_hits == 1
        label_videos(storage, small_corpus, 3, start=9)
        warm.training_design("r3d")
        assert warm.stats.design_extensions == 1

    def test_cached_matrix_matches_fresh_gather(self, small_corpus):
        storage, feature_manager, warm, cold = build_managers(small_corpus)
        label_videos(storage, small_corpus, 9)
        warm.training_design("r3d")
        # Grow in two steps, with an unrelated-feature extraction in between.
        label_videos(storage, small_corpus, 6, start=9)
        warm.training_design("r3d")
        label_videos(storage, small_corpus, 6, start=15)
        cached, cached_names = warm.training_design("r3d")
        fresh, fresh_names = cold.training_design("r3d")
        assert cached_names == fresh_names
        np.testing.assert_array_equal(cached, fresh)

    def test_extension_survives_epoch_bump_from_new_clips(self, small_corpus):
        """Foreground extraction of freshly selected clips must not rebuild."""
        storage, feature_manager, warm, __ = build_managers(small_corpus)
        label_videos(storage, small_corpus, 9)
        warm.training_design("r3d")
        # New labels on videos with no features yet: the extension itself
        # extracts them (epoch moves), but old rows stay valid.
        label_videos(storage, small_corpus, 6, start=9)
        epoch_before = storage.features.epoch("r3d")
        warm.training_design("r3d")
        assert storage.features.epoch("r3d") > epoch_before
        assert warm.stats.design_extensions == 1
        assert warm.stats.design_rebuilds == 1

    def test_concurrent_append_during_extension_never_duplicates_rows(
        self, small_corpus, monkeypatch
    ):
        """Regression: a label added between the cache's tail read and its
        revision update (thread-engine interleaving) must not be re-appended
        by the next extension.  The entry's revision is derived from the
        labels actually read, so it always equals the cached row count."""
        storage, __, warm, __cold = build_managers(small_corpus)
        label_videos(storage, small_corpus, 9)
        warm.training_design("r3d")
        label_videos(storage, small_corpus, 3, start=9)

        real_since = storage.labels.since

        def racing_since(revision):
            tail = real_since(revision)
            # Simulate the foreground loop appending while a worker extends.
            label_videos(storage, small_corpus, 1, start=12)
            return tail

        monkeypatch.setattr(storage.labels, "since", racing_since)
        warm.training_design("r3d")
        monkeypatch.setattr(storage.labels, "since", real_since)
        matrix, names = warm.training_design("r3d")
        entry = warm._design_cache["r3d"]
        assert entry.label_revision == len(entry.names) == len(storage.labels)
        assert len(names) == len(storage.labels) == 13
        assert matrix.shape[0] == 13

    def test_standardization_sums_match_direct_stats(self, small_corpus):
        storage, __, warm, __cold = build_managers(small_corpus)
        label_videos(storage, small_corpus, 9)
        warm.training_design("r3d")
        label_videos(storage, small_corpus, 9, start=9)
        warm.training_design("r3d")
        entry = warm._design_cache["r3d"]
        mean, scale = entry.standardization()
        np.testing.assert_allclose(mean, entry.matrix.mean(axis=0), atol=1e-9)
        expected_scale = entry.matrix.std(axis=0)
        expected_scale[expected_scale < 1e-12] = 1.0
        np.testing.assert_allclose(scale, expected_scale, atol=1e-9)


class TestFastCrossValidation:
    def test_unchanged_round_is_served_from_cache(self, small_corpus):
        storage, __, warm, __cold = build_managers(small_corpus)
        label_videos(storage, small_corpus, 15)
        first = warm.cross_validate("r3d")
        second = warm.cross_validate("r3d")
        assert first == second
        assert warm.stats.cv_cache_hits == 1
        assert warm.stats.cv_rounds == 1

    def test_new_labels_invalidate_cv_cache(self, small_corpus):
        storage, __, warm, __cold = build_managers(small_corpus)
        label_videos(storage, small_corpus, 15)
        warm.cross_validate("r3d")
        label_videos(storage, small_corpus, 6, start=15)
        warm.cross_validate("r3d")
        assert warm.stats.cv_rounds == 2
        assert warm.stats.cv_warm_folds > 0

    def test_fold_parameters_key_the_cache(self, small_corpus):
        storage, __, warm, __cold = build_managers(small_corpus)
        label_videos(storage, small_corpus, 15)
        warm.cross_validate("r3d", num_folds=3)
        warm.cross_validate("r3d", num_folds=2)
        assert warm.stats.cv_rounds == 2

    def test_warm_scores_close_to_cold_scores(self, small_corpus):
        storage, __, warm, cold = build_managers(small_corpus)
        label_videos(storage, small_corpus, 24)
        warm_result = warm.cross_validate("r3d")
        cold_result = cold.cross_validate("r3d")
        assert warm_result.classes_evaluated == cold_result.classes_evaluated
        assert warm_result.num_examples == cold_result.num_examples
        # Fold splits differ, so scores are estimates of the same quantity.
        assert abs(warm_result.mean_f1 - cold_result.mean_f1) < 0.25
