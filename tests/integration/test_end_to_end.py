"""Integration tests: full exploration sessions across subsystem boundaries."""

import pytest

from repro.config import ALMConfig, SchedulerConfig, VocalExploreConfig
from repro.core.api import VOCALExplore
from repro.core.oracle import NoisyOracleUser, OracleUser
from repro.experiments.evaluation import ModelEvaluator
from repro.storage.storage_manager import StorageManager


def run_session(vocal, oracle, steps, batch_size=5):
    for __ in range(steps):
        result = vocal.explore(batch_size=batch_size, clip_duration=1.0)
        for segment in result.segments:
            vocal.add_label(
                segment.vid, segment.start, segment.end, oracle.label_for(segment.clip)
            )
        vocal.finish_iteration()


class TestFullExplorationLoop:
    def test_model_quality_improves_with_labels(self, tiny_dataset):
        vocal = VOCALExplore.for_dataset(tiny_dataset, config=VocalExploreConfig(seed=0))
        oracle = OracleUser(tiny_dataset.train_corpus)
        evaluator = ModelEvaluator(tiny_dataset, seed=0)

        run_session(vocal, oracle, steps=2)
        early = evaluator.evaluate_manager(vocal.session.models, vocal.current_feature())
        run_session(vocal, oracle, steps=6)
        late = evaluator.evaluate_manager(vocal.session.models, vocal.current_feature())

        assert late >= early - 0.05
        assert late > 1.0 / len(tiny_dataset.class_names)

    def test_skewed_dataset_eventually_switches_to_active_learning(self, tiny_dataset):
        vocal = VOCALExplore.for_dataset(tiny_dataset, config=VocalExploreConfig(seed=2))
        oracle = OracleUser(tiny_dataset.train_corpus)
        run_session(vocal, oracle, steps=10)
        acquisitions = {summary.acquisition for summary in vocal.summaries()}
        assert "cluster-margin" in acquisitions or "coreset" in acquisitions

    def test_uniform_dataset_stays_random(self, uniform_dataset):
        vocal = VOCALExplore.for_dataset(uniform_dataset, config=VocalExploreConfig(seed=0))
        oracle = OracleUser(uniform_dataset.train_corpus)
        run_session(vocal, oracle, steps=8)
        acquisitions = [summary.acquisition for summary in vocal.summaries()]
        assert acquisitions.count("random") >= len(acquisitions) - 1

    def test_visible_latency_stays_interactive(self, tiny_dataset):
        vocal = VOCALExplore.for_dataset(tiny_dataset, config=VocalExploreConfig(seed=0))
        oracle = OracleUser(tiny_dataset.train_corpus)
        run_session(vocal, oracle, steps=8)
        latencies = [summary.visible_latency for summary in vocal.summaries()]
        # After the first couple of iterations the eager extraction makes the
        # visible latency small (the paper reports ~1 second per iteration).
        assert max(latencies[2:]) < 5.0

    def test_feature_candidates_shrink_over_time(self, tiny_dataset):
        config = VocalExploreConfig(seed=1).with_updates(
            feature_selection=__import__(
                "repro.config", fromlist=["FeatureSelectionConfig"]
            ).FeatureSelectionConfig(warmup_iterations=3, horizon=15),
        )
        vocal = VOCALExplore.for_dataset(tiny_dataset, config=config)
        oracle = OracleUser(tiny_dataset.train_corpus)
        run_session(vocal, oracle, steps=14)
        assert len(vocal.session.alm.candidate_features()) < 5

    def test_noisy_labels_still_produce_model(self, tiny_dataset):
        vocal = VOCALExplore.for_dataset(tiny_dataset, config=VocalExploreConfig(seed=0))
        oracle = NoisyOracleUser(tiny_dataset.train_corpus, noise_rate=0.2, seed=0)
        evaluator = ModelEvaluator(tiny_dataset, seed=0)
        run_session(vocal, oracle, steps=6)
        f1 = evaluator.evaluate_manager(vocal.session.models, vocal.current_feature())
        assert f1 > 0.0

    def test_targeted_exploration_returns_segments(self, tiny_dataset):
        vocal = VOCALExplore.for_dataset(tiny_dataset, config=VocalExploreConfig(seed=0))
        oracle = OracleUser(tiny_dataset.train_corpus)
        run_session(vocal, oracle, steps=4)
        result = vocal.explore(batch_size=3, clip_duration=1.0, label="c")
        assert len(result.segments) == 3
        for segment in result.segments:
            vocal.add_label(
                segment.vid, segment.start, segment.end, oracle.label_for(segment.clip)
            )
        vocal.finish_iteration()


class TestWorkspacePersistence:
    def test_session_state_survives_save_and_load(self, tiny_dataset, tmp_path):
        vocal = VOCALExplore.for_dataset(tiny_dataset, config=VocalExploreConfig(seed=0))
        oracle = OracleUser(tiny_dataset.train_corpus)
        run_session(vocal, oracle, steps=3)
        storage = vocal.session.storage
        storage.save(tmp_path)

        restored = StorageManager.load(tmp_path)
        assert len(restored.videos) == len(storage.videos)
        assert len(restored.labels) == len(storage.labels)
        assert restored.labels.class_counts() == storage.labels.class_counts()
        for fid in storage.features.extractors():
            assert restored.features.count(fid) == storage.features.count(fid)


class TestSerialVsOptimizedQuality:
    def test_optimized_schedule_keeps_quality_close_to_serial(self, tiny_dataset):
        oracle = OracleUser(tiny_dataset.train_corpus)
        evaluator = ModelEvaluator(tiny_dataset, seed=0)
        scores = {}
        for strategy in ("serial", "ve-full"):
            config = VocalExploreConfig(
                alm=ALMConfig(candidate_pool_size=10),
                scheduler=SchedulerConfig(strategy=strategy),
                seed=3,
            )
            vocal = VOCALExplore.for_dataset(tiny_dataset, config=config)
            run_session(vocal, oracle, steps=6)
            scores[strategy] = evaluator.evaluate_manager(
                vocal.session.models, vocal.current_feature()
            )
        # The paper's epsilon: the optimized schedule loses little quality.
        assert scores["ve-full"] >= scores["serial"] - 0.25
