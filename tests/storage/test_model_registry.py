"""Tests for the model registry and storage-manager facade."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.models.linear import SoftmaxRegression
from repro.storage.model_registry import ModelRegistry
from repro.storage.storage_manager import StorageManager
from repro.types import Label


class DummyModel:
    """Minimal stand-in implementing the checkpoint protocol."""

    def __init__(self, value):
        self.value = value

    def get_parameters(self):
        return np.full(3, self.value)


class TestModelRegistry:
    def test_register_assigns_versions_per_feature(self):
        registry = ModelRegistry()
        first = registry.register("r3d", DummyModel(1), ["a"], 5, created_at=0.0)
        second = registry.register("r3d", DummyModel(2), ["a"], 10, created_at=1.0)
        other = registry.register("clip", DummyModel(3), ["a"], 5, created_at=2.0)
        assert (first.version, second.version, other.version) == (1, 2, 1)
        assert len(registry) == 3

    def test_latest_returns_most_recent(self):
        registry = ModelRegistry()
        registry.register("r3d", DummyModel(1), ["a"], 5, created_at=0.0)
        registry.register("r3d", DummyModel(2), ["a"], 10, created_at=1.0)
        model, info = registry.latest("r3d")
        assert model.value == 2
        assert info.version == 2

    def test_latest_missing_feature_returns_none(self):
        assert ModelRegistry().latest("r3d") is None

    def test_get_unknown_model_raises(self):
        with pytest.raises(ModelError):
            ModelRegistry().get(4)

    def test_info_and_history(self):
        registry = ModelRegistry()
        registry.register("r3d", DummyModel(1), ["a"], 5, created_at=0.0)
        registry.register("r3d", DummyModel(2), ["a"], 10, created_at=1.0)
        history = registry.history("r3d")
        assert [info.version for info in history] == [1, 2]
        assert registry.info(history[0].model_id).num_labels == 5

    def test_features_with_models(self):
        registry = ModelRegistry()
        registry.register("clip", DummyModel(1), ["a"], 5, created_at=0.0)
        assert registry.features_with_models() == ["clip"]

    def test_save_checkpoint_writes_file(self, tmp_path):
        registry = ModelRegistry()
        info = registry.register("r3d", DummyModel(4), ["a", "b"], 5, created_at=0.0)
        path = registry.save_checkpoint(info.model_id, tmp_path)
        assert path.exists()
        np.testing.assert_allclose(np.load(path), np.full(3, 4.0))

    def test_save_checkpoint_requires_parameters(self, tmp_path):
        registry = ModelRegistry()
        info = registry.register("r3d", object(), ["a"], 5, created_at=0.0)
        with pytest.raises(ModelError):
            registry.save_checkpoint(info.model_id, tmp_path)

    def test_checkpoint_of_real_model(self, tmp_path):
        rng = np.random.default_rng(0)
        features = rng.standard_normal((20, 6))
        labels = ["a" if x[0] > 0 else "b" for x in features]
        model = SoftmaxRegression(["a", "b"]).fit(features, labels)
        registry = ModelRegistry()
        info = registry.register("r3d", model, ["a", "b"], 20, created_at=0.0)
        path = registry.save_checkpoint(info.model_id, tmp_path)
        assert np.load(path).ndim == 1


class TestStorageManager:
    def test_summary_counts(self):
        manager = StorageManager()
        manager.videos.add("a.mp4", 10.0)
        manager.labels.add(Label(0, 0.0, 1.0, "walk"))
        summary = manager.summary()
        assert summary["videos"] == 1
        assert summary["labels"] == 1
        assert summary["models"] == 0

    def test_save_and_load_roundtrip(self, tmp_path):
        manager = StorageManager()
        manager.videos.add("a.mp4", 10.0)
        manager.videos.add("b.mp4", 12.0)
        manager.labels.add(Label(0, 0.0, 1.0, "walk"))
        manager.save(tmp_path)

        loaded = StorageManager.load(tmp_path)
        assert len(loaded.videos) == 2
        assert len(loaded.labels) == 1
        assert loaded.videos.get(1).path == "b.mp4"
        assert loaded.features.extractors() == []


class TestLatestVersion:
    def test_zero_before_any_model(self):
        registry = ModelRegistry()
        assert registry.latest_version("r3d") == 0

    def test_tracks_registrations_per_feature(self):
        registry = ModelRegistry()
        registry.register("r3d", DummyModel(1.0), ["a"], 1, 0.0)
        registry.register("r3d", DummyModel(2.0), ["a"], 2, 1.0)
        registry.register("mvit", DummyModel(3.0), ["a"], 1, 2.0)
        assert registry.latest_version("r3d") == 2
        assert registry.latest_version("mvit") == 1
