"""Tests for the predicate-expression DSL."""

import numpy as np
import pytest

from repro.exceptions import SchemaError
from repro.storage.expressions import BooleanOp, Comparison, col, lit


@pytest.fixture
def columns():
    return {
        "vid": np.array([0, 1, 2, 3, 4]),
        "duration": np.array([5.0, 10.0, 15.0, 20.0, 25.0]),
        "label": np.array(["a", "b", "a", "c", "b"], dtype=object),
    }


class TestComparisons:
    def test_equality_against_literal(self, columns):
        mask = (col("label") == "a").evaluate(columns)
        assert mask.tolist() == [True, False, True, False, False]

    def test_inequality(self, columns):
        mask = (col("label") != "a").evaluate(columns)
        assert mask.tolist() == [False, True, False, True, True]

    def test_less_than(self, columns):
        mask = (col("duration") < 15.0).evaluate(columns)
        assert mask.tolist() == [True, True, False, False, False]

    def test_less_equal(self, columns):
        mask = (col("duration") <= 15.0).evaluate(columns)
        assert mask.tolist() == [True, True, True, False, False]

    def test_greater_than(self, columns):
        mask = (col("vid") > 2).evaluate(columns)
        assert mask.tolist() == [False, False, False, True, True]

    def test_greater_equal(self, columns):
        mask = (col("vid") >= 2).evaluate(columns)
        assert mask.tolist() == [False, False, True, True, True]

    def test_column_vs_column(self, columns):
        enriched = dict(columns)
        enriched["threshold"] = np.array([6.0, 6.0, 6.0, 30.0, 30.0])
        mask = (col("duration") > col("threshold")).evaluate(enriched)
        assert mask.tolist() == [False, True, True, False, False]

    def test_unknown_column_raises(self, columns):
        with pytest.raises(SchemaError):
            (col("missing") == 1).evaluate(columns)

    def test_invalid_operator_rejected(self):
        with pytest.raises(SchemaError):
            Comparison(col("a"), lit(1), "<>")


class TestBooleanOps:
    def test_and(self, columns):
        expr = (col("duration") > 5.0) & (col("label") == "a")
        assert expr.evaluate(columns).tolist() == [False, False, True, False, False]

    def test_or(self, columns):
        expr = (col("vid") == 0) | (col("vid") == 4)
        assert expr.evaluate(columns).tolist() == [True, False, False, False, True]

    def test_not(self, columns):
        expr = ~(col("label") == "a")
        assert expr.evaluate(columns).tolist() == [False, True, False, True, True]

    def test_nested_combination(self, columns):
        expr = ((col("duration") >= 10.0) & (col("duration") <= 20.0)) | (col("label") == "b")
        assert expr.evaluate(columns).tolist() == [False, True, True, True, True]

    def test_invalid_boolean_operator_rejected(self):
        with pytest.raises(SchemaError):
            BooleanOp(col("a") == 1, col("b") == 2, "xor")


class TestMembership:
    def test_isin(self, columns):
        expr = col("label").isin(["a", "c"])
        assert expr.evaluate(columns).tolist() == [True, False, True, True, False]

    def test_isin_empty_collection(self, columns):
        expr = col("label").isin([])
        assert expr.evaluate(columns).tolist() == [False] * 5

    def test_isin_numeric(self, columns):
        expr = col("vid").isin([1, 3])
        assert expr.evaluate(columns).tolist() == [False, True, False, True, False]


class TestLiterals:
    def test_literal_evaluates_to_value(self, columns):
        assert lit(42).evaluate(columns) == 42

    def test_repr_forms(self):
        assert "col('vid')" in repr(col("vid") == 3)
        assert "lit(3)" in repr(col("vid") == 3)
