"""Tests for the typed column buffer."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import SchemaError
from repro.storage.column import Column, ColumnType


class TestColumnBasics:
    def test_empty_column_has_zero_length(self):
        assert len(Column("x", ColumnType.INT)) == 0

    def test_append_and_get(self):
        column = Column("x", ColumnType.INT)
        column.append(3)
        column.append(5)
        assert len(column) == 2
        assert column.get(0) == 3
        assert column.get(1) == 5

    def test_extend_from_constructor(self):
        column = Column("x", ColumnType.FLOAT, [1.0, 2.5, 3.25])
        assert column.to_list() == [1.0, 2.5, 3.25]

    def test_values_returns_readonly_view(self):
        column = Column("x", ColumnType.INT, [1, 2, 3])
        view = column.values()
        assert list(view) == [1, 2, 3]
        with pytest.raises(ValueError):
            view[0] = 99

    def test_growth_beyond_initial_capacity(self):
        column = Column("x", ColumnType.INT)
        for i in range(100):
            column.append(i)
        assert len(column) == 100
        assert column.to_list() == list(range(100))

    def test_repr_contains_name_and_size(self):
        column = Column("duration", ColumnType.FLOAT, [1.0])
        text = repr(column)
        assert "duration" in text
        assert "size=1" in text


class TestColumnTypes:
    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", "decimal")

    def test_int_column_rejects_float(self):
        column = Column("x", ColumnType.INT)
        with pytest.raises(SchemaError):
            column.append(1.5)

    def test_int_column_rejects_bool(self):
        column = Column("x", ColumnType.INT)
        with pytest.raises(SchemaError):
            column.append(True)

    def test_float_column_accepts_int(self):
        column = Column("x", ColumnType.FLOAT)
        column.append(2)
        assert column.get(0) == 2.0
        assert isinstance(column.get(0), float)

    def test_float_column_rejects_string(self):
        column = Column("x", ColumnType.FLOAT)
        with pytest.raises(SchemaError):
            column.append("3.5")

    def test_bool_column_rejects_int(self):
        column = Column("x", ColumnType.BOOL)
        with pytest.raises(SchemaError):
            column.append(1)

    def test_str_column_rejects_int(self):
        column = Column("x", ColumnType.STR)
        with pytest.raises(SchemaError):
            column.append(7)

    def test_none_rejected(self):
        column = Column("x", ColumnType.STR)
        with pytest.raises(SchemaError):
            column.append(None)

    def test_numpy_scalars_accepted(self):
        column = Column("x", ColumnType.INT)
        column.append(np.int64(12))
        assert column.get(0) == 12

    def test_get_returns_python_scalars(self):
        column = Column("flag", ColumnType.BOOL, [True, False])
        assert column.get(0) is True
        assert isinstance(column.get(0), bool)


class TestColumnOperations:
    def test_set_overwrites_value(self):
        column = Column("x", ColumnType.INT, [1, 2, 3])
        column.set(1, 20)
        assert column.to_list() == [1, 20, 3]

    def test_set_out_of_range(self):
        column = Column("x", ColumnType.INT, [1])
        with pytest.raises(IndexError):
            column.set(5, 1)

    def test_get_out_of_range(self):
        column = Column("x", ColumnType.INT, [1])
        with pytest.raises(IndexError):
            column.get(1)

    def test_take_subset_in_order(self):
        column = Column("x", ColumnType.STR, ["a", "b", "c", "d"])
        taken = column.take([3, 0, 2])
        assert taken.to_list() == ["d", "a", "c"]
        assert taken.name == "x"

    def test_take_out_of_range(self):
        column = Column("x", ColumnType.INT, [1, 2])
        with pytest.raises(IndexError):
            column.take([0, 5])

    def test_copy_is_independent(self):
        original = Column("x", ColumnType.INT, [1, 2])
        duplicate = original.copy()
        duplicate.append(3)
        assert len(original) == 2
        assert len(duplicate) == 3


class TestColumnProperties:
    @given(st.lists(st.integers(min_value=-(2**31), max_value=2**31)))
    def test_int_roundtrip(self, values):
        column = Column("x", ColumnType.INT, values)
        assert column.to_list() == values

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32)))
    def test_float_roundtrip(self, values):
        column = Column("x", ColumnType.FLOAT, values)
        assert column.to_list() == pytest.approx(values)

    @given(st.lists(st.text(max_size=20)))
    def test_str_roundtrip(self, values):
        column = Column("x", ColumnType.STR, values)
        assert column.to_list() == values

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1))
    def test_take_identity_permutation(self, values):
        column = Column("x", ColumnType.INT, values)
        taken = column.take(list(range(len(values))))
        assert taken.to_list() == values
