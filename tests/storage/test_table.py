"""Tests for the column-store table."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import DuplicateKeyError, SchemaError
from repro.storage.expressions import col
from repro.storage.table import Table

SCHEMA = {"vid": "int", "duration": "float", "label": "str", "active": "bool"}


def make_table(rows=()):
    table = Table("videos", SCHEMA, primary_key="vid")
    for row in rows:
        table.insert(row)
    return table


def row(vid, duration=10.0, label="a", active=True):
    return {"vid": vid, "duration": duration, "label": label, "active": active}


class TestTableConstruction:
    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", {})

    def test_primary_key_must_be_column(self):
        with pytest.raises(SchemaError):
            Table("t", {"a": "int"}, primary_key="b")

    def test_schema_exposed(self):
        table = make_table()
        assert table.schema == SCHEMA
        assert table.column_names == list(SCHEMA)


class TestInsert:
    def test_insert_returns_incrementing_index(self):
        table = make_table()
        assert table.insert(row(0)) == 0
        assert table.insert(row(1)) == 1
        assert len(table) == 2

    def test_missing_column_rejected(self):
        table = make_table()
        with pytest.raises(SchemaError):
            table.insert({"vid": 0, "duration": 1.0, "label": "a"})

    def test_extra_column_rejected(self):
        table = make_table()
        bad = row(0)
        bad["extra"] = 1
        with pytest.raises(SchemaError):
            table.insert(bad)

    def test_duplicate_primary_key_rejected(self):
        table = make_table([row(0)])
        with pytest.raises(DuplicateKeyError):
            table.insert(row(0))

    def test_insert_many(self):
        table = make_table()
        indices = table.insert_many([row(0), row(1), row(2)])
        assert indices == [0, 1, 2]

    def test_contains_uses_primary_key(self):
        table = make_table([row(5)])
        assert 5 in table
        assert 6 not in table

    def test_contains_without_primary_key_raises(self):
        table = Table("t", {"a": "int"})
        table.insert({"a": 1})
        with pytest.raises(SchemaError):
            1 in table


class TestReads:
    def test_row_roundtrip(self):
        table = make_table([row(0, 3.5, "walk", False)])
        assert table.row(0) == {"vid": 0, "duration": 3.5, "label": "walk", "active": False}

    def test_rows_iterates_all(self):
        table = make_table([row(i) for i in range(4)])
        assert [r["vid"] for r in table.rows()] == [0, 1, 2, 3]

    def test_get_by_key(self):
        table = make_table([row(3, label="x"), row(7, label="y")])
        assert table.get_by_key(7)["label"] == "y"

    def test_get_by_missing_key(self):
        table = make_table([row(0)])
        with pytest.raises(KeyError):
            table.get_by_key(99)

    def test_column_returns_values(self):
        table = make_table([row(0, label="a"), row(1, label="b")])
        assert list(table.column("label")) == ["a", "b"]

    def test_unknown_column_raises(self):
        table = make_table([row(0)])
        with pytest.raises(SchemaError):
            table.column("missing")


class TestUpdate:
    def test_update_changes_values(self):
        table = make_table([row(0, label="a")])
        table.update(0, {"label": "b", "duration": 2.0})
        assert table.row(0)["label"] == "b"
        assert table.row(0)["duration"] == 2.0

    def test_update_unknown_column_rejected(self):
        table = make_table([row(0)])
        with pytest.raises(SchemaError):
            table.update(0, {"missing": 1})

    def test_update_primary_key_reindexes(self):
        table = make_table([row(0)])
        table.update(0, {"vid": 9})
        assert 9 in table
        assert 0 not in table

    def test_update_primary_key_duplicate_rejected(self):
        table = make_table([row(0), row(1)])
        with pytest.raises(DuplicateKeyError):
            table.update(0, {"vid": 1})


class TestFilterProjectSort:
    def test_filter_returns_matching_rows(self):
        table = make_table([row(i, duration=float(i)) for i in range(6)])
        subset = table.filter(col("duration") >= 3.0)
        assert [r["vid"] for r in subset.rows()] == [3, 4, 5]

    def test_filter_empty_table(self):
        table = make_table()
        assert len(table.filter(col("vid") == 0)) == 0

    def test_filter_preserves_key_lookup(self):
        table = make_table([row(i) for i in range(4)])
        subset = table.filter(col("vid") > 1)
        assert subset.get_by_key(3)["vid"] == 3

    def test_filter_indices(self):
        table = make_table([row(i, label="a" if i % 2 else "b") for i in range(4)])
        indices = table.filter_indices(col("label") == "a")
        assert list(indices) == [1, 3]

    def test_take_orders_rows(self):
        table = make_table([row(i) for i in range(4)])
        taken = table.take([2, 0])
        assert [r["vid"] for r in taken.rows()] == [2, 0]

    def test_project_restricts_columns(self):
        table = make_table([row(0)])
        projected = table.project(["vid", "label"])
        assert projected.column_names == ["vid", "label"]
        assert projected.row(0) == {"vid": 0, "label": "a"}

    def test_project_unknown_column(self):
        table = make_table([row(0)])
        with pytest.raises(SchemaError):
            table.project(["vid", "missing"])

    def test_project_drops_primary_key_when_not_selected(self):
        table = make_table([row(0)])
        projected = table.project(["label"])
        assert projected.primary_key is None

    def test_sort_by_ascending_and_descending(self):
        table = make_table([row(0, duration=3.0), row(1, duration=1.0), row(2, duration=2.0)])
        ascending = table.sort_by("duration")
        descending = table.sort_by("duration", descending=True)
        assert [r["vid"] for r in ascending.rows()] == [1, 2, 0]
        assert [r["vid"] for r in descending.rows()] == [0, 2, 1]


class TestAggregation:
    def test_count_by(self):
        table = make_table([row(0, label="a"), row(1, label="b"), row(2, label="a")])
        assert table.count_by("label") == {"a": 2, "b": 1}

    def test_distinct_preserves_first_seen_order(self):
        table = make_table([row(0, label="b"), row(1, label="a"), row(2, label="b")])
        assert table.distinct("label") == ["b", "a"]

    def test_to_records(self):
        table = make_table([row(0), row(1)])
        records = table.to_records()
        assert len(records) == 2
        assert records[0]["vid"] == 0


class TestTableProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), unique=True, max_size=50))
    def test_primary_key_lookup_consistent(self, vids):
        table = make_table([row(v) for v in vids])
        for vid in vids:
            assert table.get_by_key(vid)["vid"] == vid

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    def test_filter_partition(self, durations, threshold):
        table = make_table([row(i, duration=d) for i, d in enumerate(durations)])
        below = table.filter(col("duration") < threshold)
        at_or_above = table.filter(col("duration") >= threshold)
        assert len(below) + len(at_or_above) == len(table)
