"""Property-style tests for the columnar FeatureStore's batched lookup paths.

The batched APIs (``get_many``, ``has_many``, ``matrix``, ``covering_mask``,
``add_batch``) must agree exactly with the per-clip reference semantics
(``get``, ``has``, ``get_nearest``) on randomized clip sets, including
nearest-fallback ties and missing-video error cases.
"""

import numpy as np
import pytest

from repro.exceptions import MissingFeatureError
from repro.storage.feature_store import FeatureStore
from repro.types import ClipSpec, FeatureVector

DIM = 6


def build_random_store(rng, num_videos=8, windows_per_video=10):
    """Store with a grid of 1s windows per video plus the raw columns."""
    store = FeatureStore()
    clips, vectors = [], []
    for vid in range(num_videos):
        for w in range(windows_per_video):
            clip = ClipSpec(vid, float(w), float(w + 1))
            vector = rng.standard_normal(DIM)
            store.add(
                FeatureVector(fid="f", vid=vid, start=clip.start, end=clip.end, vector=vector)
            )
            clips.append(clip)
            vectors.append(vector)
    return store, clips, np.vstack(vectors)


def random_queries(rng, stored_clips, count, miss_fraction=0.5):
    """Random mix of exact stored clips and misaligned (fallback) clips."""
    queries = []
    for _ in range(count):
        base = stored_clips[int(rng.integers(0, len(stored_clips)))]
        if rng.random() < miss_fraction:
            shift = float(rng.uniform(-0.45, 0.45))
            start = max(0.0, base.start + 0.1 + shift * 0.5)
            queries.append(ClipSpec(base.vid, start, base.end + shift))
        else:
            queries.append(base)
    return queries


@pytest.mark.parametrize("seed", range(5))
class TestBatchedAgreesWithPerClip:
    def test_matrix_matches_get_and_nearest(self, seed):
        rng = np.random.default_rng(seed)
        store, stored, __ = build_random_store(rng)
        queries = random_queries(rng, stored, count=40)

        batched = store.matrix("f", queries)
        assert batched.shape == (len(queries), DIM)
        for i, clip in enumerate(queries):
            if store.has("f", clip):
                expected = store.get("f", clip)
            else:
                __, expected = store.get_nearest("f", clip)
            np.testing.assert_array_equal(batched[i], expected)

    def test_get_many_matches_get(self, seed):
        rng = np.random.default_rng(seed)
        store, stored, __ = build_random_store(rng)
        queries = random_queries(rng, stored, count=30, miss_fraction=0.0)
        batched = store.get_many("f", queries)
        for i, clip in enumerate(queries):
            np.testing.assert_array_equal(batched[i], store.get("f", clip))

    def test_has_many_matches_has(self, seed):
        rng = np.random.default_rng(seed)
        store, stored, __ = build_random_store(rng)
        queries = random_queries(rng, stored, count=30)
        mask = store.has_many("f", queries)
        assert mask.tolist() == [store.has("f", c) for c in queries]

    def test_covering_mask_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        store, stored, __ = build_random_store(rng, num_videos=4)
        queries = random_queries(rng, stored, count=30)
        # Clips on a video with no features must be False, not an error.
        queries.append(ClipSpec(vid=99, start=0.0, end=1.0))

        mask = store.covering_mask("f", queries)
        for covered, clip in zip(mask, queries):
            if store.has("f", clip):
                assert covered
            elif not store.has_any_for_video("f", clip.vid):
                assert not covered
            else:
                nearest_clip, __ = store.get_nearest("f", clip)
                assert covered == (nearest_clip.start <= clip.midpoint <= nearest_clip.end)

    def test_add_batch_matches_add_many(self, seed):
        rng = np.random.default_rng(seed)
        num = 25
        vids = rng.integers(0, 5, size=num).astype(np.int64)
        starts = rng.integers(0, 20, size=num).astype(np.float64)
        ends = starts + 1.0
        vectors = rng.standard_normal((num, DIM))

        one_by_one = FeatureStore()
        added_single = one_by_one.add_many(
            FeatureVector(fid="f", vid=int(v), start=float(s), end=float(e), vector=row)
            for v, s, e, row in zip(vids, starts, ends, vectors)
        )
        batched = FeatureStore()
        added_batch = batched.add_batch("f", vids, starts, ends, vectors)

        assert added_batch == added_single
        assert batched.count("f") == one_by_one.count("f")
        assert batched.clips_for("f") == one_by_one.clips_for("f")
        for clip in batched.clips_for("f"):
            np.testing.assert_array_equal(batched.get("f", clip), one_by_one.get("f", clip))


class TestNearestTies:
    def test_tie_resolves_to_earlier_midpoint(self):
        store = FeatureStore()
        store.add(FeatureVector(fid="f", vid=0, start=0.0, end=1.0, vector=np.full(DIM, 1.0)))
        store.add(FeatureVector(fid="f", vid=0, start=2.0, end=3.0, vector=np.full(DIM, 2.0)))
        # Midpoint 1.5 is exactly between the stored midpoints 0.5 and 2.5.
        tie = ClipSpec(0, 1.25, 1.75)
        clip, vector = store.get_nearest("f", tie)
        assert clip == ClipSpec(0, 0.0, 1.0)
        np.testing.assert_array_equal(vector, np.full(DIM, 1.0))
        np.testing.assert_array_equal(store.matrix("f", [tie])[0], np.full(DIM, 1.0))

    def test_identical_midpoints_resolve_to_first_inserted(self):
        store = FeatureStore()
        store.add(FeatureVector(fid="f", vid=0, start=1.0, end=3.0, vector=np.full(DIM, 1.0)))
        store.add(FeatureVector(fid="f", vid=0, start=0.0, end=4.0, vector=np.full(DIM, 2.0)))
        clip, vector = store.get_nearest("f", ClipSpec(0, 1.9, 2.1))
        assert clip == ClipSpec(0, 1.0, 3.0)
        np.testing.assert_array_equal(vector, np.full(DIM, 1.0))

    def test_identical_midpoints_below_target_resolve_to_first_inserted(self):
        """Regression: a query above a run of equal midpoints must still pick
        the first-inserted row of the run, not its last entry."""
        store = FeatureStore()
        store.add(FeatureVector(fid="f", vid=0, start=3.0, end=4.0, vector=np.full(DIM, 1.0)))
        store.add(FeatureVector(fid="f", vid=0, start=2.5, end=4.5, vector=np.full(DIM, 2.0)))
        clip, vector = store.get_nearest("f", ClipSpec(0, 4.1, 4.3))
        assert clip == ClipSpec(0, 3.0, 4.0)
        np.testing.assert_array_equal(vector, np.full(DIM, 1.0))
        query = ClipSpec(0, 4.1, 4.3)
        np.testing.assert_array_equal(store.matrix("f", [query])[0], np.full(DIM, 1.0))

    def test_batched_ties_agree_with_single_lookups(self):
        store = FeatureStore()
        for w in range(4):
            store.add(
                FeatureVector(
                    fid="f", vid=0, start=2.0 * w, end=2.0 * w + 1, vector=np.full(DIM, float(w))
                )
            )
        # Every query midpoint is equidistant from two stored windows.
        queries = [ClipSpec(0, 1.25, 1.75), ClipSpec(0, 3.25, 3.75), ClipSpec(0, 5.25, 5.75)]
        batched = store.matrix("f", queries)
        for i, q in enumerate(queries):
            __, expected = store.get_nearest("f", q)
            np.testing.assert_array_equal(batched[i], expected)


class TestBatchedErrors:
    def test_matrix_missing_video_raises(self):
        store = FeatureStore()
        store.add(FeatureVector(fid="f", vid=0, start=0.0, end=1.0, vector=np.ones(DIM)))
        with pytest.raises(MissingFeatureError, match="video 7"):
            store.matrix("f", [ClipSpec(0, 0.0, 1.0), ClipSpec(7, 0.0, 1.0)])

    def test_matrix_unknown_extractor_raises(self):
        with pytest.raises(MissingFeatureError):
            FeatureStore().matrix("nope", [ClipSpec(0, 0.0, 1.0)])

    def test_get_many_missing_clip_raises(self):
        store = FeatureStore()
        store.add(FeatureVector(fid="f", vid=0, start=0.0, end=1.0, vector=np.ones(DIM)))
        with pytest.raises(MissingFeatureError, match=r"vid=0 \[4.0, 5.0\]"):
            store.get_many("f", [ClipSpec(0, 0.0, 1.0), ClipSpec(0, 4.0, 5.0)])

    def test_add_batch_dimension_mismatch_raises(self):
        store = FeatureStore()
        store.add(FeatureVector(fid="f", vid=0, start=0.0, end=1.0, vector=np.ones(DIM)))
        with pytest.raises(ValueError, match="stores 6-d"):
            store.add_batch(
                "f",
                np.array([1]),
                np.array([0.0]),
                np.array([1.0]),
                np.ones((1, DIM + 1)),
            )

    def test_add_batch_misaligned_columns_raise(self):
        with pytest.raises(ValueError, match="equal length"):
            FeatureStore().add_batch(
                "f", np.array([0, 1]), np.array([0.0]), np.array([1.0]), np.ones((1, DIM))
            )
