"""Atomic-write and load-error-path tests for the legacy persistence layer.

Covers two satellite items of the durability issue:

* ``save_table``/``save_array`` route through the atomic
  write-temp-then-rename helper, so a save that crashes at any
  write/fsync/rename boundary leaves the previously persisted files intact;
* every ``StorageManager.load`` error path (missing column file, schema /
  row-count mismatch, truncated npz) raises :class:`StorageError` instead of
  leaking raw numpy/``KeyError`` exceptions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.storage.durability.faults import FaultInjector, InjectedCrash, inject_faults
from repro.storage.feature_store import FeatureStore
from repro.storage.label_store import LabelStore
from repro.storage.persistence import load_array, load_table, save_array, save_table
from repro.storage.storage_manager import StorageManager
from repro.storage.table import Table
from repro.types import FeatureVector, Label


def build_table(rows=2):
    table = Table("videos", {"vid": "int", "duration": "float"}, primary_key="vid")
    for vid in range(rows):
        table.insert({"vid": vid, "duration": 10.0 + vid})
    return table


class TestAtomicSaveTable:
    def test_crashed_save_leaves_previous_files_intact(self, tmp_path):
        """Regression for the non-atomic in-place write: kill the save at
        every write/fsync/rename boundary and reload the old table."""
        save_table(build_table(rows=2), tmp_path)
        expected = load_table("videos", tmp_path).to_records()
        index = 0
        crashes = 0
        while True:
            injector = FaultInjector(crash_at=index)
            try:
                with inject_faults(injector):
                    save_table(build_table(rows=5), tmp_path)
            except InjectedCrash:
                crashes += 1
                loaded = load_table("videos", tmp_path)  # must not be torn
                assert len(loaded) in (2, 5)
                if len(loaded) == 2:
                    assert loaded.to_records() == expected
                index += 1
                continue
            break
        assert crashes >= 4  # data write/fsync/rename + schema write at least
        assert len(load_table("videos", tmp_path)) == 5

    def test_no_temp_litter_after_clean_save(self, tmp_path):
        save_table(build_table(), tmp_path)
        assert not list(tmp_path.glob("*.tmp"))

    def test_save_array_is_atomic(self, tmp_path):
        path = tmp_path / "weights.npy"
        save_array(np.arange(4.0), path)
        injector = FaultInjector(crash_at=0)
        with pytest.raises(InjectedCrash):
            with inject_faults(injector):
                save_array(np.arange(8.0), path)
        assert np.array_equal(load_array(path), np.arange(4.0))


class TestLoadTableErrorPaths:
    def test_truncated_npz_raises_storage_error(self, tmp_path):
        save_table(build_table(), tmp_path)
        payload = tmp_path / "videos.columns.npz"
        payload.write_bytes(payload.read_bytes()[:20])
        with pytest.raises(StorageError, match="truncated or corrupt"):
            load_table("videos", tmp_path)

    def test_missing_column_raises_storage_error(self, tmp_path):
        save_table(build_table(), tmp_path)
        np.savez(tmp_path / "videos.columns.npz", vid=np.arange(2))  # drop "duration"
        with pytest.raises(StorageError, match="missing columns"):
            load_table("videos", tmp_path)

    def test_row_count_mismatch_raises_storage_error(self, tmp_path):
        save_table(build_table(rows=3), tmp_path)
        np.savez(
            tmp_path / "videos.columns.npz",
            vid=np.arange(2),
            duration=np.ones(2),
        )
        with pytest.raises(StorageError, match="rows, schema says 3"):
            load_table("videos", tmp_path)

    def test_unreadable_sidecar_schema_raises_storage_error(self, tmp_path):
        # Legacy archive: no embedded schema, so the sidecar is authoritative.
        np.savez(tmp_path / "videos.columns.npz", vid=np.arange(2), duration=np.ones(2))
        (tmp_path / "videos.schema.json").write_text("{broken")
        with pytest.raises(StorageError, match="unreadable schema"):
            load_table("videos", tmp_path)

    def test_schema_missing_fields_raises_storage_error(self, tmp_path):
        np.savez(tmp_path / "videos.columns.npz", vid=np.arange(2), duration=np.ones(2))
        (tmp_path / "videos.schema.json").write_text('{"name": "videos"}')
        with pytest.raises(StorageError, match="missing"):
            load_table("videos", tmp_path)

    def test_legacy_sidecar_archive_still_loads(self, tmp_path):
        """Archives written before the embedded schema must keep loading."""
        save_table(build_table(rows=2), tmp_path)
        payload = tmp_path / "videos.columns.npz"
        with np.load(payload, allow_pickle=False) as archive:
            arrays = {k: archive[k] for k in archive.files if k != "__schema__"}
        np.savez(payload, **arrays)
        loaded = load_table("videos", tmp_path)
        assert len(loaded) == 2

    def test_corrupt_array_raises_storage_error(self, tmp_path):
        path = tmp_path / "weights.npy"
        save_array(np.arange(4.0), path)
        path.write_bytes(b"\x93NUMPY garbage")
        with pytest.raises(StorageError, match="truncated or corrupt"):
            load_array(path)


def populated_workspace(tmp_path):
    storage = StorageManager()
    storage.videos.add("a.mp4", 10.0)
    storage.videos.add("b.mp4", 8.0)
    storage.labels.add(Label(vid=0, start=0.0, end=1.0, label="walk"))
    storage.features.add(
        FeatureVector(fid="r3d", vid=0, start=0.0, end=1.0, vector=np.ones(4))
    )
    storage.save(tmp_path)
    return storage


class TestStorageManagerLoadErrorPaths:
    def test_missing_feature_column_file_is_storage_error(self, tmp_path):
        populated_workspace(tmp_path)
        np.savez(tmp_path / "features" / "features_r3d.npz", vids=np.zeros(1, dtype=np.int64))
        with pytest.raises(StorageError, match="missing columns"):
            StorageManager.load(tmp_path)

    def test_truncated_feature_npz_is_storage_error(self, tmp_path):
        populated_workspace(tmp_path)
        payload = tmp_path / "features" / "features_r3d.npz"
        payload.write_bytes(payload.read_bytes()[:16])
        with pytest.raises(StorageError, match="truncated or corrupt"):
            StorageManager.load(tmp_path)

    def test_feature_row_count_mismatch_is_storage_error(self, tmp_path):
        populated_workspace(tmp_path)
        np.savez(
            tmp_path / "features" / "features_r3d.npz",
            vids=np.zeros(2, dtype=np.int64),
            starts=np.zeros(1),
            ends=np.ones(1),
            vectors=np.ones((1, 4)),
        )
        with pytest.raises(StorageError, match="disagree on row count"):
            StorageManager.load(tmp_path)

    def test_unreadable_feature_manifest_is_storage_error(self, tmp_path):
        populated_workspace(tmp_path)
        (tmp_path / "features" / "features.manifest.json").write_text("{broken")
        with pytest.raises(StorageError, match="unreadable"):
            FeatureStore.load(tmp_path / "features")

    def test_truncated_label_table_is_storage_error(self, tmp_path):
        populated_workspace(tmp_path)
        payload = tmp_path / "labels.columns.npz"
        payload.write_bytes(payload.read_bytes()[:10])
        with pytest.raises(StorageError):
            LabelStore.load(tmp_path)

    def test_clean_roundtrip_still_works(self, tmp_path):
        populated_workspace(tmp_path)
        restored = StorageManager.load(tmp_path)
        assert len(restored.videos) == 2
        assert len(restored.labels) == 1
        assert restored.features.count("r3d") == 1
