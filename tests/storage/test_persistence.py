"""Tests for table and array persistence."""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.storage.persistence import load_array, load_table, save_array, save_table
from repro.storage.table import Table


def build_table():
    table = Table(
        "videos",
        {"vid": "int", "duration": "float", "label": "str", "flag": "bool"},
        primary_key="vid",
    )
    table.insert({"vid": 0, "duration": 10.5, "label": "walk", "flag": True})
    table.insert({"vid": 1, "duration": 3.25, "label": "eat", "flag": False})
    return table


class TestTablePersistence:
    def test_roundtrip_preserves_rows_and_schema(self, tmp_path):
        table = build_table()
        save_table(table, tmp_path)
        loaded = load_table("videos", tmp_path)
        assert loaded.schema == table.schema
        assert loaded.primary_key == "vid"
        assert loaded.to_records() == table.to_records()

    def test_roundtrip_empty_table(self, tmp_path):
        table = Table("empty", {"a": "int"}, primary_key="a")
        save_table(table, tmp_path)
        loaded = load_table("empty", tmp_path)
        assert len(loaded) == 0
        assert loaded.schema == {"a": "int"}

    def test_missing_table_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_table("nope", tmp_path)

    def test_save_creates_directory(self, tmp_path):
        nested = tmp_path / "a" / "b"
        save_table(build_table(), nested)
        assert load_table("videos", nested).to_records() == build_table().to_records()

    def test_loaded_table_accepts_new_inserts(self, tmp_path):
        save_table(build_table(), tmp_path)
        loaded = load_table("videos", tmp_path)
        loaded.insert({"vid": 2, "duration": 1.0, "label": "rest", "flag": True})
        assert len(loaded) == 3
        assert loaded.get_by_key(2)["label"] == "rest"


class TestArrayPersistence:
    def test_roundtrip_array(self, tmp_path):
        array = np.arange(12, dtype=np.float64).reshape(3, 4)
        path = tmp_path / "features.npy"
        save_array(array, path)
        assert np.array_equal(load_array(path), array)

    def test_metadata_written_alongside(self, tmp_path):
        path = tmp_path / "model.npy"
        save_array(np.zeros(4), path, metadata={"version": 1})
        assert (tmp_path / "model.npy.meta.json").exists()

    def test_missing_array_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_array(tmp_path / "missing.npy")
