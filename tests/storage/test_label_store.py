"""Tests for the label store."""

import pytest

from repro.storage.label_store import LabelStore
from repro.types import ClipSpec, Label


def label(vid, start=0.0, end=1.0, name="walk"):
    return Label(vid=vid, start=start, end=end, label=name)


class TestLabelStore:
    def test_add_returns_incrementing_ids(self):
        store = LabelStore()
        assert store.add(label(0)) == 0
        assert store.add(label(1)) == 1
        assert len(store) == 2

    def test_all_preserves_insertion_order(self):
        store = LabelStore()
        store.add(label(0, name="a"))
        store.add(label(1, name="b"))
        assert [entry.label for entry in store.all()] == ["a", "b"]

    def test_add_many(self):
        store = LabelStore()
        ids = store.add_many([label(0), label(1), label(2)])
        assert ids == [0, 1, 2]

    def test_for_video(self):
        store = LabelStore()
        store.add(label(0, name="a"))
        store.add(label(1, name="b"))
        store.add(label(0, 5.0, 6.0, "c"))
        names = [entry.label for entry in store.for_video(0)]
        assert names == ["a", "c"]

    def test_labeled_vids_distinct(self):
        store = LabelStore()
        store.add(label(3))
        store.add(label(3, 2.0, 3.0))
        store.add(label(5))
        assert store.labeled_vids() == [3, 5]

    def test_class_counts(self):
        store = LabelStore()
        for name in ["a", "a", "b", "c", "a"]:
            store.add(label(0, name=name))
        assert store.class_counts() == {"a": 3, "b": 1, "c": 1}

    def test_classes_first_seen_order(self):
        store = LabelStore()
        for name in ["b", "a", "b", "c"]:
            store.add(label(0, name=name))
        assert store.classes() == ["b", "a", "c"]

    def test_count_for_class_missing(self):
        assert LabelStore().count_for_class("x") == 0

    def test_covers_overlapping_clip(self):
        store = LabelStore()
        store.add(label(0, 2.0, 4.0))
        assert store.covers(ClipSpec(0, 3.0, 5.0))
        assert not store.covers(ClipSpec(0, 4.5, 5.0))
        assert not store.covers(ClipSpec(1, 2.0, 4.0))

    def test_labeled_clips(self):
        store = LabelStore()
        store.add(label(0, 1.0, 2.0))
        clips = store.labeled_clips()
        assert clips == [ClipSpec(0, 1.0, 2.0)]

    def test_diversity_smax_empty(self):
        assert LabelStore().diversity_smax() == 0.0

    def test_diversity_smax_uniform(self):
        store = LabelStore()
        for name in ["a", "b", "c", "a", "b", "c"]:
            store.add(label(0, name=name))
        assert store.diversity_smax() == pytest.approx(1.0 / 3.0)

    def test_diversity_smax_skewed(self):
        store = LabelStore()
        for name in ["a"] * 8 + ["b", "c"]:
            store.add(label(0, name=name))
        assert store.diversity_smax() == pytest.approx(0.8)

    def test_save_and_load_roundtrip(self, tmp_path):
        store = LabelStore()
        store.add(label(0, 1.0, 2.0, "walk"))
        store.add(label(3, 0.0, 1.0, "eat"))
        store.save(tmp_path)
        loaded = LabelStore.load(tmp_path)
        assert len(loaded) == 2
        assert loaded.class_counts() == {"walk": 1, "eat": 1}
        # New ids continue after the loaded maximum.
        assert loaded.add(label(9)) == 2


class TestRevision:
    def test_revision_ticks_per_label(self):
        store = LabelStore()
        assert store.revision == 0
        store.add(label(0))
        store.add(label(1))
        assert store.revision == 2
        store.add_many([label(2), label(3)])
        assert store.revision == 4

    def test_since_returns_appended_tail(self):
        store = LabelStore()
        store.add(label(0, name="walk"))
        checkpoint = store.revision
        store.add(label(1, name="eat"))
        store.add(label(2, name="rest"))
        tail = store.since(checkpoint)
        assert [entry.label for entry in tail] == ["eat", "rest"]
        assert [entry.vid for entry in tail] == [1, 2]

    def test_since_current_revision_is_empty(self):
        store = LabelStore()
        store.add(label(0))
        assert store.since(store.revision) == []
        assert store.since(store.revision + 5) == []

    def test_since_zero_equals_all(self):
        store = LabelStore()
        store.add_many([label(0), label(1), label(2)])
        assert store.since(0) == store.all()

    def test_load_restores_revision(self, tmp_path):
        store = LabelStore()
        store.add_many([label(0), label(1)])
        store.save(tmp_path)
        loaded = LabelStore.load(tmp_path)
        assert loaded.revision == 2
        loaded.add(label(2))
        assert loaded.revision == 3
        assert [entry.vid for entry in loaded.since(2)] == [2]
