"""Tests for FeatureStore vector search: attach_index, search, invalidation."""

import numpy as np
import pytest

from repro.exceptions import MissingFeatureError
from repro.storage.feature_store import FeatureStore
from repro.types import ClipSpec


def filled_store(n=60, dim=8, seed=0, fid="r3d"):
    rng = np.random.default_rng(seed)
    store = FeatureStore()
    vids = np.arange(n, dtype=np.int64)
    starts = np.zeros(n)
    ends = np.ones(n)
    vectors = rng.standard_normal((n, dim))
    store.add_batch(fid, vids, starts, ends, vectors)
    return store, vectors


class TestSearch:
    def test_default_backend_is_exact(self):
        store, __ = filled_store()
        assert store.index_backend("r3d") == "exact"
        assert store.index_backend("unknown") == "exact"

    def test_search_returns_nearest_rows(self):
        store, vectors = filled_store()
        distances, rows = store.search("r3d", vectors[13], k=1)
        assert rows[0, 0] == 13
        assert distances[0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_search_batch_shapes(self):
        store, vectors = filled_store()
        distances, rows = store.search("r3d", vectors[:5], k=4)
        assert distances.shape == (5, 4) and rows.shape == (5, 4)

    def test_rows_convert_to_clips(self):
        store, vectors = filled_store()
        __, rows = store.search("r3d", vectors[7], k=2)
        clips = store.clips_at("r3d", rows[0])
        assert clips[0] == ClipSpec(7, 0.0, 1.0)

    def test_clips_at_maps_padding_to_none(self):
        store, vectors = filled_store(n=2)
        __, rows = store.search("r3d", vectors[0], k=5)
        clips = store.clips_at("r3d", rows[0])
        assert clips[2:] == [None, None, None]

    def test_unknown_extractor_raises(self):
        store = FeatureStore()
        with pytest.raises(MissingFeatureError):
            store.search("nope", np.zeros(4), k=1)

    def test_empty_shard_raises(self):
        store = FeatureStore()
        store.attach_index("r3d", "exact")
        with pytest.raises(MissingFeatureError):
            store.search("r3d", np.zeros(4), k=1)


class TestAttachIndex:
    def test_backend_switch_takes_effect(self):
        store, vectors = filled_store(n=200)
        store.attach_index("r3d", "lsh", seed=0)
        assert store.index_backend("r3d") == "lsh"
        distances, rows = store.search("r3d", vectors[3], k=1)
        assert rows[0, 0] == 3  # its own bucket always contains it

    def test_attach_before_any_vector(self):
        store = FeatureStore()
        store.attach_index("r3d", "ivf-flat", seed=0)
        assert store.index_backend("r3d") == "ivf-flat"
        store.add_batch(
            "r3d", np.arange(10), np.zeros(10), np.ones(10),
            np.random.default_rng(0).standard_normal((10, 4)),
        )
        __, rows = store.search("r3d", store.columns("r3d")[3][4], k=1)
        assert rows[0, 0] == 4

    def test_attach_does_not_fabricate_extractor(self, tmp_path):
        # A config probe with an unknown fid must not create a phantom shard
        # that would leak into extractors() and the persistence manifest.
        store, __ = filled_store()
        store.attach_index("typo_extractor", "lsh")
        assert store.extractors() == ["r3d"]
        store.save(tmp_path)
        assert FeatureStore.load(tmp_path).extractors() == ["r3d"]

    def test_reattach_same_spec_keeps_built_index(self):
        store, vectors = filled_store()
        store.search("r3d", vectors[0], k=1)  # builds lazily
        shard = store._shards["r3d"]
        built = shard._vindex
        store.attach_index("r3d", "exact")
        assert shard._vindex is built

    def test_attach_different_spec_drops_built_index(self):
        store, vectors = filled_store()
        store.search("r3d", vectors[0], k=1)
        shard = store._shards["r3d"]
        store.attach_index("r3d", "lsh", seed=1)
        assert shard._vindex is None


class TestWriteInvalidation:
    def test_add_batch_rows_visible_to_next_search(self):
        store, vectors = filled_store(n=40)
        store.search("r3d", vectors[0], k=1)  # build the index
        rng = np.random.default_rng(99)
        fresh = rng.standard_normal((5, vectors.shape[1]))
        store.add_batch(
            "r3d", np.arange(100, 105), np.zeros(5), np.ones(5), fresh
        )
        distances, rows = store.search("r3d", fresh[2], k=1)
        assert rows[0, 0] == 42  # 40 existing + index 2 of the new batch
        assert distances[0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_single_add_visible_to_next_search(self):
        store, vectors = filled_store(n=20)
        store.search("r3d", vectors[0], k=1)
        from repro.types import FeatureVector

        new_vector = np.full(vectors.shape[1], 123.0)
        store.add(FeatureVector("r3d", 500, 0.0, 1.0, new_vector))
        __, rows = store.search("r3d", new_vector, k=1)
        assert store.clips_at("r3d", rows[0])[0].vid == 500

    def test_search_results_deterministic_after_rebuild(self):
        for backend in ("exact", "ivf-flat", "lsh"):
            runs = []
            for __ in range(2):
                store, vectors = filled_store(n=120)
                store.attach_index("r3d", backend, seed=7)
                runs.append(store.search("r3d", vectors[:10], k=5))
            assert np.array_equal(runs[0][1], runs[1][1])
            assert np.array_equal(runs[0][0], runs[1][0])

    def test_load_drops_index_and_rebuilds(self, tmp_path):
        store, vectors = filled_store(n=30)
        store.search("r3d", vectors[0], k=1)
        store.save(tmp_path)
        restored = FeatureStore.load(tmp_path)
        assert restored._shards["r3d"]._vindex is None
        __, rows = restored.search("r3d", vectors[11], k=1)
        assert rows[0, 0] == 11
