"""Tests for the feature-vector store."""

import numpy as np
import pytest

from repro.exceptions import MissingFeatureError
from repro.storage.feature_store import FeatureStore
from repro.types import ClipSpec, FeatureVector


def feature(fid="r3d", vid=0, start=0.0, end=1.0, value=1.0, dim=8):
    return FeatureVector(fid=fid, vid=vid, start=start, end=end, vector=np.full(dim, value))


class TestFeatureStoreWrites:
    def test_add_new_feature(self):
        store = FeatureStore()
        assert store.add(feature()) is True
        assert store.count("r3d") == 1

    def test_add_duplicate_clip_ignored(self):
        store = FeatureStore()
        store.add(feature(value=1.0))
        assert store.add(feature(value=2.0)) is False
        assert store.count("r3d") == 1
        np.testing.assert_allclose(store.get("r3d", ClipSpec(0, 0.0, 1.0)), np.ones(8))

    def test_add_many_counts_new_only(self):
        store = FeatureStore()
        added = store.add_many([feature(), feature(vid=1), feature()])
        assert added == 2

    def test_extractors_listed(self):
        store = FeatureStore()
        store.add(feature(fid="r3d"))
        store.add(feature(fid="clip"))
        assert set(store.extractors()) == {"r3d", "clip"}


class TestFeatureStoreReads:
    def test_get_exact_clip(self):
        store = FeatureStore()
        store.add(feature(vid=2, start=3.0, end=4.0, value=5.0))
        np.testing.assert_allclose(store.get("r3d", ClipSpec(2, 3.0, 4.0)), np.full(8, 5.0))

    def test_get_missing_extractor(self):
        with pytest.raises(MissingFeatureError):
            FeatureStore().get("r3d", ClipSpec(0, 0.0, 1.0))

    def test_get_missing_clip(self):
        store = FeatureStore()
        store.add(feature())
        with pytest.raises(MissingFeatureError):
            store.get("r3d", ClipSpec(0, 5.0, 6.0))

    def test_has_and_has_any_for_video(self):
        store = FeatureStore()
        store.add(feature(vid=1, start=2.0, end=3.0))
        assert store.has("r3d", ClipSpec(1, 2.0, 3.0))
        assert not store.has("r3d", ClipSpec(1, 0.0, 1.0))
        assert store.has_any_for_video("r3d", 1)
        assert not store.has_any_for_video("r3d", 2)
        assert not store.has_any_for_video("clip", 1)

    def test_nearest_picks_closest_midpoint(self):
        store = FeatureStore()
        store.add(feature(vid=0, start=0.0, end=1.0, value=1.0))
        store.add(feature(vid=0, start=5.0, end=6.0, value=2.0))
        clip, vector = store.get_nearest("r3d", ClipSpec(0, 4.4, 4.6))
        assert clip == ClipSpec(0, 5.0, 6.0)
        np.testing.assert_allclose(vector, np.full(8, 2.0))

    def test_nearest_requires_same_video(self):
        store = FeatureStore()
        store.add(feature(vid=0))
        with pytest.raises(MissingFeatureError):
            store.get_nearest("r3d", ClipSpec(1, 0.0, 1.0))

    def test_clips_for_video_filter(self):
        store = FeatureStore()
        store.add(feature(vid=0, start=0.0, end=1.0))
        store.add(feature(vid=0, start=1.0, end=2.0))
        store.add(feature(vid=1, start=0.0, end=1.0))
        assert len(store.clips_for("r3d")) == 3
        assert len(store.clips_for("r3d", vid=0)) == 2
        assert store.clips_for("clip") == []

    def test_vids_with_features(self):
        store = FeatureStore()
        store.add(feature(vid=4))
        store.add(feature(vid=9))
        assert set(store.vids_with_features("r3d")) == {4, 9}
        assert store.vids_with_features("clip") == []


class TestMatrixAccess:
    def test_matrix_exact_rows(self):
        store = FeatureStore()
        store.add(feature(vid=0, value=1.0))
        store.add(feature(vid=1, value=2.0))
        matrix = store.matrix("r3d", [ClipSpec(1, 0.0, 1.0), ClipSpec(0, 0.0, 1.0)])
        assert matrix.shape == (2, 8)
        np.testing.assert_allclose(matrix[0], np.full(8, 2.0))
        np.testing.assert_allclose(matrix[1], np.full(8, 1.0))

    def test_matrix_falls_back_to_nearest(self):
        store = FeatureStore()
        store.add(feature(vid=0, start=0.0, end=1.0, value=3.0))
        matrix = store.matrix("r3d", [ClipSpec(0, 0.25, 0.75)])
        np.testing.assert_allclose(matrix[0], np.full(8, 3.0))

    def test_all_vectors(self):
        store = FeatureStore()
        store.add(feature(vid=0, value=1.0))
        store.add(feature(vid=1, value=2.0))
        clips, matrix = store.all_vectors("r3d")
        assert len(clips) == 2
        assert matrix.shape == (2, 8)

    def test_all_vectors_empty(self):
        clips, matrix = FeatureStore().all_vectors("r3d")
        assert clips == []
        assert matrix.size == 0

    def test_matrix_empty_request_keeps_known_dim(self):
        store = FeatureStore()
        store.add(feature(dim=8))
        matrix = store.matrix("r3d", [])
        assert matrix.shape == (0, 8)
        # Downstream callers stack design matrices; (0, d) must compose.
        stacked = np.vstack([matrix, np.ones((2, 8))])
        assert stacked.shape == (2, 8)
        assert np.hstack([matrix, np.empty((0, 3))]).shape == (0, 11)

    def test_columns_are_aligned_views(self):
        store = FeatureStore()
        store.add(feature(vid=1, start=0.0, end=1.0, value=1.0))
        store.add(feature(vid=2, start=3.0, end=4.0, value=2.0))
        vids, starts, ends, vectors = store.columns("r3d")
        np.testing.assert_array_equal(vids, [1, 2])
        np.testing.assert_allclose(starts, [0.0, 3.0])
        np.testing.assert_allclose(ends, [1.0, 4.0])
        np.testing.assert_allclose(vectors[1], np.full(8, 2.0))


class TestFeatureStorePersistence:
    def test_save_and_load_roundtrip(self, tmp_path):
        store = FeatureStore()
        store.add(feature(fid="r3d", vid=0, value=1.5))
        store.add(feature(fid="clip", vid=1, start=2.0, end=3.0, value=-1.0, dim=4))
        store.save(tmp_path)
        loaded = FeatureStore.load(tmp_path)
        assert set(loaded.extractors()) == {"r3d", "clip"}
        np.testing.assert_allclose(
            loaded.get("clip", ClipSpec(1, 2.0, 3.0)), np.full(4, -1.0)
        )

    def test_load_missing_directory_gives_empty_store(self, tmp_path):
        loaded = FeatureStore.load(tmp_path / "nothing")
        assert loaded.extractors() == []

    def test_roundtrip_preserves_extractor_with_missing_payload(self, tmp_path):
        """A manifest entry whose .npz payload is gone must not be dropped."""
        store = FeatureStore()
        store.add(feature(fid="r3d", vid=0))
        store.add(feature(fid="clip", vid=1, dim=4))
        store.save(tmp_path)
        (tmp_path / "features_clip.npz").unlink()

        loaded = FeatureStore.load(tmp_path)
        assert set(loaded.extractors()) == {"r3d", "clip"}
        assert loaded.count("clip") == 0
        # Dimensionality survives via the manifest, so empty reads are shaped.
        assert loaded.dim("clip") == 4
        assert loaded.matrix("clip", []).shape == (0, 4)
        clips, matrix = loaded.all_vectors("clip")
        assert clips == [] and matrix.shape == (0, 4)

    def test_roundtrip_of_empty_shard_is_stable(self, tmp_path):
        store = FeatureStore()
        store.add(feature(fid="r3d", vid=0))
        store.save(tmp_path)
        (tmp_path / "features_r3d.npz").unlink()
        once = FeatureStore.load(tmp_path)

        second_dir = tmp_path / "again"
        once.save(second_dir)
        twice = FeatureStore.load(second_dir)
        assert twice.extractors() == once.extractors() == ["r3d"]
        assert twice.count("r3d") == 0

    def test_load_avoids_row_reinsertion_and_preserves_order(self, tmp_path):
        store = FeatureStore()
        for vid in (3, 1, 2):
            store.add(feature(vid=vid, value=float(vid)))
        store.save(tmp_path)
        loaded = FeatureStore.load(tmp_path)
        assert loaded.clips_for("r3d") == store.clips_for("r3d")
        vids, __, __, vectors = loaded.columns("r3d")
        np.testing.assert_array_equal(vids, [3, 1, 2])
        np.testing.assert_allclose(vectors[:, 0], [3.0, 1.0, 2.0])


class TestEpoch:
    def test_unknown_extractor_is_epoch_zero(self):
        store = FeatureStore()
        assert store.epoch("r3d") == 0

    def test_writes_bump_epoch(self):
        store = FeatureStore()
        store.add(feature())
        first = store.epoch("r3d")
        assert first > 0
        store.add(feature(vid=1))
        assert store.epoch("r3d") > first

    def test_duplicate_add_does_not_bump(self):
        store = FeatureStore()
        store.add(feature())
        before = store.epoch("r3d")
        assert store.add(feature(value=9.0)) is False
        assert store.epoch("r3d") == before

    def test_add_batch_bumps_once_for_fresh_rows(self):
        store = FeatureStore()
        store.add(feature())
        before = store.epoch("r3d")
        store.add_batch(
            "r3d",
            np.array([0, 1]),
            np.array([0.0, 0.0]),
            np.array([1.0, 1.0]),
            np.ones((2, 8)),
        )
        assert store.epoch("r3d") == before + 1

    def test_add_batch_of_only_duplicates_does_not_bump(self):
        store = FeatureStore()
        store.add(feature())
        before = store.epoch("r3d")
        store.add_batch(
            "r3d", np.array([0]), np.array([0.0]), np.array([1.0]), np.ones((1, 8))
        )
        assert store.epoch("r3d") == before

    def test_reads_do_not_bump(self):
        store = FeatureStore()
        store.add(feature())
        before = store.epoch("r3d")
        store.get("r3d", ClipSpec(0, 0.0, 1.0))
        store.matrix("r3d", [ClipSpec(0, 0.2, 0.8)])
        store.covering_mask("r3d", [ClipSpec(0, 0.0, 1.0)])
        assert store.epoch("r3d") == before

    def test_epochs_are_per_extractor(self):
        store = FeatureStore()
        store.add(feature(fid="r3d"))
        assert store.epoch("mvit") == 0


class TestResolveRows:
    def test_exact_and_nearest_resolution(self):
        store = FeatureStore()
        store.add(feature(vid=0, start=0.0, end=1.0, value=1.0))
        store.add(feature(vid=0, start=1.0, end=2.0, value=2.0))
        rows = store.resolve_rows(
            "r3d", [ClipSpec(0, 1.0, 2.0), ClipSpec(0, 0.1, 0.9), ClipSpec(0, 1.4, 1.6)]
        )
        assert rows.tolist() == [1, 0, 1]

    def test_rows_stable_under_appends_elsewhere(self):
        store = FeatureStore()
        store.add(feature(vid=0, start=0.0, end=1.0))
        clips = [ClipSpec(0, 0.0, 1.0)]
        before = store.resolve_rows("r3d", clips)
        store.add(feature(vid=5, start=0.0, end=1.0))
        np.testing.assert_array_equal(store.resolve_rows("r3d", clips), before)

    def test_unknown_extractor_raises(self):
        store = FeatureStore()
        with pytest.raises(MissingFeatureError):
            store.resolve_rows("r3d", [ClipSpec(0, 0.0, 1.0)])
