"""Tests for the video metadata store."""

import numpy as np
import pytest

from repro.exceptions import UnknownVideoError
from repro.storage.video_store import VideoStore
from repro.types import VideoRecord


class TestVideoStore:
    def test_add_assigns_incrementing_vids(self):
        store = VideoStore()
        first = store.add("a.mp4", 10.0)
        second = store.add("b.mp4", 20.0)
        assert (first.vid, second.vid) == (0, 1)
        assert len(store) == 2

    def test_get_returns_record(self):
        store = VideoStore()
        added = store.add("a.mp4", 12.5, start_time=3600.0, fps=25.0)
        fetched = store.get(added.vid)
        assert fetched == added
        assert fetched.duration == 12.5
        assert fetched.fps == 25.0

    def test_get_unknown_vid_raises(self):
        store = VideoStore()
        with pytest.raises(UnknownVideoError):
            store.get(7)

    def test_contains(self):
        store = VideoStore()
        record = store.add("a.mp4", 10.0)
        assert record.vid in store
        assert 99 not in store

    def test_add_records_assigns_fresh_vids(self):
        store = VideoStore()
        originals = [
            VideoRecord(vid=55, path="x.mp4", duration=5.0),
            VideoRecord(vid=77, path="y.mp4", duration=6.0),
        ]
        added = store.add_records(originals)
        assert [record.vid for record in added] == [0, 1]
        assert [record.path for record in added] == ["x.mp4", "y.mp4"]

    def test_all_and_vids_in_insertion_order(self):
        store = VideoStore()
        for i in range(5):
            store.add(f"{i}.mp4", 10.0)
        assert store.vids() == [0, 1, 2, 3, 4]
        assert [record.path for record in store.all()] == [f"{i}.mp4" for i in range(5)]

    def test_total_duration(self):
        store = VideoStore()
        store.add("a.mp4", 10.0)
        store.add("b.mp4", 2.5)
        assert store.total_duration() == pytest.approx(12.5)

    def test_total_duration_empty(self):
        assert VideoStore().total_duration() == 0.0

    def test_sample_vids_excludes_and_dedupes(self):
        store = VideoStore()
        for i in range(10):
            store.add(f"{i}.mp4", 10.0)
        rng = np.random.default_rng(0)
        sample = store.sample_vids(5, rng, exclude=[0, 1, 2])
        assert len(sample) == 5
        assert len(set(sample)) == 5
        assert not set(sample) & {0, 1, 2}

    def test_sample_more_than_available(self):
        store = VideoStore()
        store.add("a.mp4", 10.0)
        rng = np.random.default_rng(0)
        assert store.sample_vids(5, rng) == [0]

    def test_sample_when_everything_excluded(self):
        store = VideoStore()
        store.add("a.mp4", 10.0)
        rng = np.random.default_rng(0)
        assert store.sample_vids(3, rng, exclude=[0]) == []

    def test_save_and_load_roundtrip(self, tmp_path):
        store = VideoStore()
        store.add("a.mp4", 10.0, start_time=1.0, fps=30.0)
        store.add("b.mp4", 20.0, start_time=2.0, fps=24.0)
        store.save(tmp_path)
        loaded = VideoStore.load(tmp_path)
        assert len(loaded) == 2
        assert loaded.get(1).path == "b.mp4"
        # New vids continue after the loaded maximum.
        assert loaded.add("c.mp4", 5.0).vid == 2
