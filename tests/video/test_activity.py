"""Tests for activity segments and tracks."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import VideoError
from repro.video.activity import ActivitySegment, ActivityTrack


class TestActivitySegment:
    def test_duration(self):
        assert ActivitySegment(1.0, 4.0, "walk").duration == 3.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(VideoError):
            ActivitySegment(2.0, 2.0, "walk")
        with pytest.raises(VideoError):
            ActivitySegment(3.0, 1.0, "walk")

    def test_overlap_partial(self):
        segment = ActivitySegment(2.0, 6.0, "walk")
        assert segment.overlap(0.0, 3.0) == pytest.approx(1.0)
        assert segment.overlap(5.0, 10.0) == pytest.approx(1.0)
        assert segment.overlap(3.0, 4.0) == pytest.approx(1.0)

    def test_overlap_disjoint_is_zero(self):
        segment = ActivitySegment(2.0, 6.0, "walk")
        assert segment.overlap(6.0, 8.0) == 0.0
        assert segment.overlap(0.0, 2.0) == 0.0


class TestActivityTrack:
    def build(self):
        return ActivityTrack(
            10.0,
            [
                ActivitySegment(0.0, 6.0, "bedded"),
                ActivitySegment(4.0, 8.0, "chewing"),
                ActivitySegment(8.0, 10.0, "walking"),
            ],
        )

    def test_invalid_duration(self):
        with pytest.raises(VideoError):
            ActivityTrack(0.0, [])

    def test_segment_outside_duration_rejected(self):
        with pytest.raises(VideoError):
            ActivityTrack(5.0, [ActivitySegment(0.0, 6.0, "walk")])

    def test_len_and_activities(self):
        track = self.build()
        assert len(track) == 3
        assert track.activities() == ["bedded", "chewing", "walking"]

    def test_activities_at_instant(self):
        track = self.build()
        assert track.activities_at(1.0) == ["bedded"]
        assert set(track.activities_at(5.0)) == {"bedded", "chewing"}
        assert track.activities_at(9.0) == ["walking"]

    def test_activities_in_interval_ordered_by_overlap(self):
        track = self.build()
        ordered = track.activities_in(3.0, 7.0)
        assert ordered[0] == "bedded"  # 3 seconds of overlap vs 3 for chewing (tie-broken stably)
        assert set(ordered) == {"bedded", "chewing"}

    def test_activities_in_respects_min_overlap(self):
        track = self.build()
        # "bedded" overlaps [5.9, 6.2] by only 0.1 s and is filtered out;
        # "chewing" overlaps by 0.3 s and survives the 0.2 s threshold.
        assert track.activities_in(5.9, 6.2, min_overlap=0.2) == ["chewing"]

    def test_activities_in_invalid_interval(self):
        with pytest.raises(VideoError):
            self.build().activities_in(5.0, 5.0)

    def test_dominant_activity(self):
        track = self.build()
        assert track.dominant_activity(0.0, 3.0) == "bedded"
        assert track.dominant_activity(8.0, 10.0) == "walking"

    def test_dominant_activity_none_when_empty(self):
        track = ActivityTrack(10.0, [ActivitySegment(0.0, 1.0, "walk")])
        assert track.dominant_activity(5.0, 6.0) is None

    def test_coverage(self):
        track = self.build()
        assert track.coverage("bedded") == pytest.approx(6.0)
        assert track.coverage("missing") == 0.0

    def test_activity_fractions(self):
        track = self.build()
        fractions = track.activity_fractions()
        assert fractions["bedded"] == pytest.approx(0.6)
        assert fractions["walking"] == pytest.approx(0.2)

    def test_activity_fractions_with_explicit_vocabulary(self):
        track = self.build()
        fractions = track.activity_fractions(["bedded", "missing"])
        assert fractions == {"bedded": pytest.approx(0.6), "missing": 0.0}

    def test_segments_sorted_by_start(self):
        track = ActivityTrack(
            10.0,
            [ActivitySegment(5.0, 6.0, "b"), ActivitySegment(0.0, 1.0, "a")],
        )
        assert [s.activity for s in track.segments] == ["a", "b"]


class TestActivityTrackProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=9.0),
                st.floats(min_value=0.5, max_value=1.0),
                st.sampled_from(["a", "b", "c"]),
            ),
            max_size=8,
        )
    )
    def test_coverage_never_exceeds_duration_fraction_bound(self, raw_segments):
        segments = [
            ActivitySegment(start, min(10.0, start + length), name)
            for start, length, name in raw_segments
        ]
        track = ActivityTrack(10.0, segments)
        fractions = track.activity_fractions()
        for value in fractions.values():
            assert 0.0 <= value <= 1.0

    @given(
        st.floats(min_value=0.0, max_value=9.0),
        st.floats(min_value=0.1, max_value=1.0),
    )
    def test_dominant_activity_is_member_of_interval_activities(self, start, length):
        track = ActivityTrack(
            10.0,
            [ActivitySegment(0.0, 5.0, "first"), ActivitySegment(5.0, 10.0, "second")],
        )
        end = min(10.0, start + length)
        dominant = track.dominant_activity(start, end)
        assert dominant in (track.activities_in(start, end) or [None])
