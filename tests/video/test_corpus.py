"""Tests for the synthetic video corpus."""

import numpy as np
import pytest

from repro.exceptions import UnknownVideoError, VideoError
from repro.types import ClipSpec
from repro.video.activity import ActivitySegment, ActivityTrack
from repro.video.corpus import VideoCorpus


def single_activity_track(activity, duration=10.0):
    return ActivityTrack(duration, [ActivitySegment(0.0, duration, activity)])


class TestCorpusConstruction:
    def test_requires_classes(self):
        with pytest.raises(VideoError):
            VideoCorpus([])

    def test_add_video_assigns_vids(self):
        corpus = VideoCorpus(["a", "b"])
        first = corpus.add_video(single_activity_track("a"))
        second = corpus.add_video(single_activity_track("b"))
        assert (first.vid, second.vid) == (0, 1)
        assert len(corpus) == 2
        assert 0 in corpus and 5 not in corpus

    def test_add_video_rejects_unknown_activity(self):
        corpus = VideoCorpus(["a"])
        with pytest.raises(VideoError):
            corpus.add_video(single_activity_track("z"))

    def test_records_and_vids(self):
        corpus = VideoCorpus(["a"])
        corpus.add_videos([single_activity_track("a") for __ in range(3)])
        assert corpus.vids() == [0, 1, 2]
        assert [record.vid for record in corpus.records()] == [0, 1, 2]

    def test_video_lookup_unknown(self):
        with pytest.raises(UnknownVideoError):
            VideoCorpus(["a"]).video(3)

    def test_class_prototypes_are_unit_norm(self):
        corpus = VideoCorpus(["a", "b", "c"], seed=1)
        for name in ["a", "b", "c"]:
            assert np.linalg.norm(corpus.class_prototype(name)) == pytest.approx(1.0)

    def test_class_prototype_unknown(self):
        with pytest.raises(VideoError):
            VideoCorpus(["a"]).class_prototype("b")


class TestGroundTruth:
    def test_ground_truth_labels(self):
        corpus = VideoCorpus(["a", "b"])
        corpus.add_video(
            ActivityTrack(
                10.0,
                [ActivitySegment(0.0, 6.0, "a"), ActivitySegment(6.0, 10.0, "b")],
            )
        )
        assert corpus.ground_truth_labels(ClipSpec(0, 0.0, 5.0)) == ["a"]
        assert set(corpus.ground_truth_labels(ClipSpec(0, 5.0, 8.0))) == {"a", "b"}

    def test_dominant_label(self):
        corpus = VideoCorpus(["a", "b"])
        corpus.add_video(
            ActivityTrack(
                10.0,
                [ActivitySegment(0.0, 7.0, "a"), ActivitySegment(7.0, 10.0, "b")],
            )
        )
        assert corpus.dominant_label(ClipSpec(0, 0.0, 10.0)) == "a"
        assert corpus.dominant_label(ClipSpec(0, 8.0, 9.0)) == "b"

    def test_clip_end_clamped_to_duration(self):
        corpus = VideoCorpus(["a"])
        corpus.add_video(single_activity_track("a", duration=5.0))
        assert corpus.dominant_label(ClipSpec(0, 4.0, 9.0)) == "a"


class TestLatentContent:
    def test_clip_latent_is_deterministic(self):
        corpus = VideoCorpus(["a", "b"], seed=3)
        corpus.add_video(single_activity_track("a"))
        clip = ClipSpec(0, 1.0, 2.0)
        np.testing.assert_allclose(corpus.clip_latent(clip), corpus.clip_latent(clip))

    def test_clip_latent_differs_between_clips(self):
        corpus = VideoCorpus(["a", "b"], seed=3)
        corpus.add_video(single_activity_track("a"))
        first = corpus.clip_latent(ClipSpec(0, 1.0, 2.0))
        second = corpus.clip_latent(ClipSpec(0, 5.0, 6.0))
        assert not np.allclose(first, second)

    def test_same_class_clips_closer_than_cross_class(self):
        corpus = VideoCorpus(["a", "b"], seed=3, within_class_noise=0.3, per_video_noise=0.1)
        corpus.add_video(single_activity_track("a"))
        corpus.add_video(single_activity_track("a"))
        corpus.add_video(single_activity_track("b"))
        same = np.linalg.norm(
            corpus.clip_latent(ClipSpec(0, 0.0, 1.0)) - corpus.clip_latent(ClipSpec(1, 0.0, 1.0))
        )
        cross = np.linalg.norm(
            corpus.clip_latent(ClipSpec(0, 0.0, 1.0)) - corpus.clip_latent(ClipSpec(2, 0.0, 1.0))
        )
        assert same < cross

    def test_clip_latent_outside_video_rejected(self):
        corpus = VideoCorpus(["a"])
        corpus.add_video(single_activity_track("a", duration=5.0))
        with pytest.raises(VideoError):
            corpus.clip_latent(ClipSpec(0, 6.0, 7.0))

    def test_frame_latents_shape(self):
        corpus = VideoCorpus(["a"], latent_dim=32)
        corpus.add_video(single_activity_track("a"))
        frames = corpus.frame_latents(ClipSpec(0, 0.0, 1.0), num_frames=16)
        assert frames.shape == (16, 32)

    def test_frame_latents_requires_positive_frames(self):
        corpus = VideoCorpus(["a"])
        corpus.add_video(single_activity_track("a"))
        with pytest.raises(VideoError):
            corpus.frame_latents(ClipSpec(0, 0.0, 1.0), num_frames=0)

    def test_mixed_clip_latent_between_prototypes(self):
        corpus = VideoCorpus(["a", "b"], seed=0, within_class_noise=0.0, per_video_noise=0.0)
        corpus.add_video(
            ActivityTrack(
                10.0,
                [ActivitySegment(0.0, 5.0, "a"), ActivitySegment(5.0, 10.0, "b")],
            )
        )
        latent = corpus.clip_latent(ClipSpec(0, 0.0, 10.0))
        expected = 0.5 * (corpus.class_prototype("a") + corpus.class_prototype("b"))
        np.testing.assert_allclose(latent, expected, atol=1e-9)


class TestCorpusStats:
    def test_class_coverage_and_counts(self):
        corpus = VideoCorpus(["a", "b"])
        corpus.add_video(single_activity_track("a"))
        corpus.add_video(single_activity_track("a"))
        corpus.add_video(single_activity_track("b", duration=5.0))
        coverage = corpus.class_coverage()
        counts = corpus.class_video_counts()
        assert coverage["a"] == pytest.approx(20.0)
        assert coverage["b"] == pytest.approx(5.0)
        assert counts == {"a": 2, "b": 1}

    def test_describe(self):
        corpus = VideoCorpus(["a", "b"])
        corpus.add_video(single_activity_track("a"))
        summary = corpus.describe()
        assert summary["num_videos"] == 1
        assert summary["num_classes"] == 2
        assert summary["total_duration"] == pytest.approx(10.0)

    def test_describe_empty(self):
        summary = VideoCorpus(["a"]).describe()
        assert summary["num_videos"] == 0
        assert summary["total_duration"] == 0.0
