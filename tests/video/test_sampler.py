"""Tests for clip sampling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import InvalidClipError
from repro.types import VideoRecord
from repro.video.sampler import ClipSampler


def video(vid=0, duration=10.0, fps=30.0):
    return VideoRecord(vid=vid, path=f"{vid}.mp4", duration=duration, fps=fps)


class TestSamplerConfig:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidClipError):
            ClipSampler(sequence_length=0)
        with pytest.raises(InvalidClipError):
            ClipSampler(stride=0)
        with pytest.raises(InvalidClipError):
            ClipSampler(step=0)

    def test_window_and_step_durations(self):
        sampler = ClipSampler(sequence_length=16, stride=2, step=32)
        assert sampler.window_duration(30.0) == pytest.approx(32 / 30)
        assert sampler.step_duration(30.0) == pytest.approx(32 / 30)


class TestFeatureWindows:
    def test_windows_cover_video(self):
        sampler = ClipSampler()
        windows = sampler.feature_windows(video(duration=10.0))
        assert windows[0].start == 0.0
        assert windows[-1].end == pytest.approx(10.0)
        # Consecutive windows are contiguous for step == sequence * stride.
        for before, after in zip(windows, windows[1:]):
            assert after.start == pytest.approx(before.start + sampler.step_duration(30.0))

    def test_short_video_gets_single_window(self):
        sampler = ClipSampler()
        windows = sampler.feature_windows(video(duration=0.5))
        assert len(windows) == 1
        assert windows[0].end == pytest.approx(0.5)

    def test_windows_for_multiple_videos(self):
        sampler = ClipSampler()
        windows = sampler.feature_windows_for([video(0), video(1, duration=5.0)])
        assert {clip.vid for clip in windows} == {0, 1}

    def test_window_containing(self):
        sampler = ClipSampler()
        record = video(duration=10.0)
        clip = sampler.window_containing(record, 5.0)
        assert clip.start <= 5.0 <= clip.end
        assert clip.vid == record.vid

    def test_window_containing_out_of_range(self):
        sampler = ClipSampler()
        with pytest.raises(InvalidClipError):
            sampler.window_containing(video(duration=10.0), 10.0)
        with pytest.raises(InvalidClipError):
            sampler.window_containing(video(duration=10.0), -1.0)

    @given(st.floats(min_value=0.0, max_value=9.99))
    def test_window_containing_property(self, time):
        sampler = ClipSampler()
        clip = sampler.window_containing(video(duration=10.0), time)
        assert clip.start <= time
        assert clip.end >= min(time, clip.end)
        assert clip.end <= 10.0 + 1e-9


class TestRandomClips:
    def test_random_clip_within_bounds(self):
        sampler = ClipSampler()
        rng = np.random.default_rng(0)
        for __ in range(20):
            clip = sampler.random_clip(video(duration=10.0), 1.0, rng)
            assert 0.0 <= clip.start
            assert clip.end <= 10.0
            assert clip.duration == pytest.approx(1.0)

    def test_random_clip_longer_than_video(self):
        sampler = ClipSampler()
        rng = np.random.default_rng(0)
        clip = sampler.random_clip(video(duration=0.5), 1.0, rng)
        assert clip.start == 0.0
        assert clip.end == pytest.approx(0.5)

    def test_random_clip_invalid_duration(self):
        sampler = ClipSampler()
        with pytest.raises(InvalidClipError):
            sampler.random_clip(video(), 0.0, np.random.default_rng(0))

    def test_random_clips_spread_across_videos(self):
        sampler = ClipSampler()
        rng = np.random.default_rng(0)
        videos = [video(i) for i in range(10)]
        clips = sampler.random_clips(videos, 1.0, 5, rng)
        assert len(clips) == 5
        assert len({clip.vid for clip in clips}) == 5

    def test_random_clips_with_replacement_when_needed(self):
        sampler = ClipSampler()
        rng = np.random.default_rng(0)
        clips = sampler.random_clips([video(0)], 1.0, 4, rng)
        assert len(clips) == 4
        assert all(clip.vid == 0 for clip in clips)

    def test_random_clips_empty_videos(self):
        sampler = ClipSampler()
        assert sampler.random_clips([], 1.0, 3, np.random.default_rng(0)) == []

    def test_random_clips_invalid_count(self):
        sampler = ClipSampler()
        with pytest.raises(InvalidClipError):
            sampler.random_clips([video(0)], 1.0, 0, np.random.default_rng(0))


class TestConsecutiveClips:
    def test_watch_segmentation(self):
        sampler = ClipSampler()
        clips = sampler.consecutive_clips(video(duration=10.0), 2.0, 5.5, 1.0)
        assert len(clips) == 4
        assert clips[0].start == pytest.approx(2.0)
        assert clips[-1].end == pytest.approx(5.5)
        for before, after in zip(clips, clips[1:]):
            assert after.start == pytest.approx(before.end)

    def test_watch_clamped_to_video(self):
        sampler = ClipSampler()
        clips = sampler.consecutive_clips(video(duration=3.0), -1.0, 10.0, 1.0)
        assert clips[0].start == 0.0
        assert clips[-1].end == pytest.approx(3.0)

    def test_watch_empty_window_rejected(self):
        sampler = ClipSampler()
        with pytest.raises(InvalidClipError):
            sampler.consecutive_clips(video(duration=3.0), 5.0, 6.0, 1.0)

    def test_watch_invalid_duration_rejected(self):
        sampler = ClipSampler()
        with pytest.raises(InvalidClipError):
            sampler.consecutive_clips(video(), 0.0, 1.0, 0.0)
