"""Tests for the simulated video decoder."""

import numpy as np
import pytest

from repro.exceptions import InvalidClipError
from repro.types import ClipSpec
from repro.video.activity import ActivitySegment, ActivityTrack
from repro.video.corpus import VideoCorpus
from repro.video.decoder import Decoder


@pytest.fixture
def corpus():
    corpus = VideoCorpus(["a", "b"], latent_dim=32, seed=2)
    corpus.add_video(ActivityTrack(10.0, [ActivitySegment(0.0, 10.0, "a")]))
    corpus.add_video(ActivityTrack(4.0, [ActivitySegment(0.0, 4.0, "b")]), fps=20.0)
    return corpus


@pytest.fixture
def decoder(corpus):
    return Decoder(corpus)


class TestDecode:
    def test_frame_count_matches_fps_and_duration(self, decoder):
        decoded = decoder.decode(ClipSpec(0, 0.0, 2.0))
        assert decoded.num_frames == 60
        assert decoded.frames.shape == (60, 32)
        assert decoded.fps == 30.0

    def test_decode_uses_video_fps(self, decoder):
        decoded = decoder.decode(ClipSpec(1, 0.0, 1.0))
        assert decoded.num_frames == 20
        assert decoded.fps == 20.0

    def test_decode_clamps_end_to_duration(self, decoder):
        decoded = decoder.decode(ClipSpec(1, 3.0, 9.0))
        assert decoded.clip.end == pytest.approx(4.0)
        assert decoded.num_frames == 20

    def test_decode_beyond_video_rejected(self, decoder):
        with pytest.raises(InvalidClipError):
            decoder.decode(ClipSpec(1, 4.5, 5.0))

    def test_decode_is_deterministic(self, decoder):
        clip = ClipSpec(0, 1.0, 2.0)
        np.testing.assert_allclose(decoder.decode(clip).frames, decoder.decode(clip).frames)

    def test_fps_override(self, decoder):
        decoded = decoder.decode(ClipSpec(0, 0.0, 1.0), fps=10.0)
        assert decoded.num_frames == 10

    def test_minimum_one_frame(self, decoder):
        decoded = decoder.decode(ClipSpec(0, 0.0, 0.01))
        assert decoded.num_frames == 1


class TestDecodedClipHelpers:
    def test_middle_frame(self, decoder):
        decoded = decoder.decode(ClipSpec(0, 0.0, 1.0))
        np.testing.assert_allclose(decoded.middle_frame(), decoded.frames[decoded.num_frames // 2])

    def test_strided_frames(self, decoder):
        decoded = decoder.decode(ClipSpec(0, 0.0, 1.0))
        assert decoded.strided_frames(2).shape[0] == 15
        with pytest.raises(InvalidClipError):
            decoded.strided_frames(0)


class TestDecodeWindow:
    def test_window_duration_matches_sequence_parameters(self, decoder, corpus):
        decoded = decoder.decode_window(0, start=0.0, sequence_length=16, stride=2)
        # 16 frames at stride 2 covers 32 raw frames ~= 1.07 s at 30 fps.
        assert decoded.clip.duration == pytest.approx(32 / 30.0, abs=1e-6)
        assert decoded.frames.shape[0] <= 16

    def test_window_near_video_end_is_clamped(self, decoder):
        decoded = decoder.decode_window(1, start=3.5)
        assert decoded.clip.end == pytest.approx(4.0)

    def test_window_outside_video_rejected(self, decoder):
        with pytest.raises(InvalidClipError):
            decoder.decode_window(1, start=4.0)

    def test_corpus_property(self, decoder, corpus):
        assert decoder.corpus is corpus
