"""Tests for the fault-tolerance layer: deadlines, supervision, retries.

Covers the resilience primitives (:mod:`repro.serving.resilience`) as pure
policy, the session supervisor's quarantine/rollback/passthrough
classification in-process, idempotent label replay over the wire, and the
scripted-workload retry adapters.  The network-level fault matrix lives in
``test_chaos.py``.
"""

from __future__ import annotations

import pytest

from repro.config import ServingConfig
from repro.exceptions import (
    DeadlineExceededError,
    ReproError,
    SessionQuarantinedError,
)
from repro.serving import (
    Deadline,
    FlakyAdapter,
    LocalSessionAdapter,
    RetryPolicy,
    RetryingAdapter,
    ScriptedUser,
    ServerThread,
    ServingClient,
    SessionManager,
    session_fingerprint,
)


class FakeClock:
    """Deterministic monotonic clock for deadline tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestDeadline:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError, match="budget"):
            Deadline(0.0)

    def test_check_is_a_noop_inside_the_budget(self):
        clock = FakeClock()
        deadline = Deadline(5.0, "explore", clock=clock)
        clock.now += 4.9
        deadline.check()  # still inside the budget
        assert deadline.remaining == pytest.approx(0.1)
        assert not deadline.expired

    def test_check_raises_typed_error_once_expired(self):
        clock = FakeClock()
        deadline = Deadline(2.0, "explore", clock=clock)
        clock.now += 2.5
        assert deadline.expired
        with pytest.raises(DeadlineExceededError, match="explore.*2.000s deadline"):
            deadline.check()


class TestRetryPolicy:
    def test_delays_grow_geometrically_and_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.1, max_delay_s=0.5, multiplier=2.0, jitter=0.0
        )
        assert [policy.delay(n) for n in range(1, 6)] == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_seeded_and_bounded(self):
        first = RetryPolicy(base_delay_s=1.0, jitter=0.5, seed=7)
        second = RetryPolicy(base_delay_s=1.0, jitter=0.5, seed=7)
        delays = [first.delay(1) for _ in range(5)]
        assert delays == [second.delay(1) for _ in range(5)]  # replayable
        assert all(0.5 <= d <= 1.0 for d in delays)

    def test_should_retry_honours_attempt_cap_and_budget(self):
        policy = RetryPolicy(max_attempts=3, budget_s=10.0)
        assert policy.should_retry(1, 0.0)
        assert policy.should_retry(2, 9.9)
        assert not policy.should_retry(3, 0.0)  # attempts exhausted
        assert not policy.should_retry(1, 10.0)  # budget exhausted

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(budget_s=0.0)


def _run_one_cycle(manager, name: str, dataset) -> list[tuple]:
    """Explore + label + finish once; returns the acked label tuples."""
    with manager.acquire(name) as vocal:
        result = vocal.explore(2)
        labels = [
            (s.clip.vid, s.clip.start, s.clip.end, dataset.class_names[0])
            for s in result.segments
        ]
        from repro.types import Label

        vocal.session.add_labels([Label(*entry) for entry in labels])
        vocal.finish_iteration()
    return labels


class TestSupervisor:
    def test_unexpected_failure_quarantines_and_rolls_back_bit_identically(
        self, manager, dataset
    ):
        _run_one_cycle(manager, "alice", dataset)
        with manager.acquire("alice", create=False) as vocal:
            vocal.checkpoint()
            fingerprint = session_fingerprint(vocal)
        with pytest.raises(
            SessionQuarantinedError, match="no acknowledged label was lost"
        ):
            with manager.supervised("alice", create=False) as vocal:
                vocal.explore(2)  # dirty the state mid-request...
                raise RuntimeError("injected worker crash")
        # ...and the rollback restored the exact pre-fault durable state.
        with manager.acquire("alice", create=False) as vocal:
            assert session_fingerprint(vocal) == fingerprint
        stats = manager.stats()
        assert stats["quarantines"] == 1
        assert stats["rollbacks"] == 1
        assert stats["rollback_failures"] == 0

    def test_rollback_reapplies_journal_tail_labels(self, manager, dataset):
        from repro.types import Label

        acked = _run_one_cycle(manager, "alice", dataset)
        with manager.acquire("alice", create=False) as vocal:
            vocal.checkpoint()
            # Acked past the snapshot: journaled, but not yet checkpointed.
            vocal.session.add_labels([Label(0, 0.0, 1.0, dataset.class_names[0])])
        with pytest.raises(SessionQuarantinedError, match="journal-tail labels re-applied"):
            with manager.supervised("alice", create=False) as vocal:
                vocal.explore(2)
                raise RuntimeError("injected worker crash")
        with manager.acquire("alice", create=False) as vocal:
            assert len(vocal.session.storage.labels) == len(acked) + 1

    def test_clean_repro_errors_pass_through_without_rollback(self, manager):
        manager.open("alice")
        with pytest.raises(ReproError):
            with manager.supervised("alice", create=False) as vocal:
                vocal.finish_iteration()  # no open iteration: clean failure
        stats = manager.stats()
        assert stats["quarantines"] == 0
        assert stats["rollbacks"] == 0

    def test_failed_rollback_poisons_entry_then_rebuilds_from_disk(
        self, manager, dataset, monkeypatch
    ):
        acked = _run_one_cycle(manager, "alice", dataset)
        original_build = manager.factory.build
        fail_once = {"left": 1}

        def flaky_build(name):
            if fail_once["left"]:
                fail_once["left"] -= 1
                raise RuntimeError("no memory for a fresh session")
            return original_build(name)

        monkeypatch.setattr(manager.factory, "build", flaky_build)
        with pytest.raises(SessionQuarantinedError, match="rollback itself failed"):
            with manager.supervised("alice", create=False) as vocal:
                vocal.explore(2)
                raise RuntimeError("injected worker crash")
        assert manager.stats()["rollback_failures"] == 1
        # The poisoned instance is discarded and rebuilt from durable state.
        with manager.acquire("alice", create=False) as vocal:
            assert len(vocal.session.storage.labels) == len(acked)
            vocal.explore(2)
            vocal.finish_iteration()

    def test_deadline_mid_mutation_rolls_back_and_stays_typed(self, manager, dataset):
        _run_one_cycle(manager, "alice", dataset)
        with manager.acquire("alice", create=False) as vocal:
            vocal.checkpoint()
            fingerprint = session_fingerprint(vocal)
        with pytest.raises(DeadlineExceededError, match="safe to retry"):
            with manager.supervised("alice", create=False) as vocal:
                scheduler = vocal.session.scheduler
                scheduler.preemption_gate = Deadline(1e-9, "explore").check
                try:
                    vocal.explore(2)  # parks at the first dispatch boundary
                finally:
                    scheduler.preemption_gate = None
        with manager.acquire("alice", create=False) as vocal:
            assert session_fingerprint(vocal) == fingerprint
        assert manager.stats()["rollbacks"] == 1


class TestServerDeadlines:
    def test_expired_deadline_fails_fast_and_typed_over_the_wire(self, factory):
        manager = SessionManager(factory, max_resident=2)
        thread = ServerThread(
            manager, ServingConfig(explore_deadline_s=1e-4, worker_threads=2)
        )
        host, port = thread.start()
        try:
            with ServingClient(host, port) as client:
                client.open("alice")
                with pytest.raises(DeadlineExceededError, match="explore"):
                    client.explore("alice", batch_size=2)
                # The deadline parked cleanly: no quarantine, session healthy.
                stats = client.stats()
                assert stats["manager"]["quarantines"] == 0
                assert stats["slo"]["classes"]["explore"]["outcomes"]["deadline"] >= 1
                ack = client.label(
                    "alice", [(0, 0.0, 1.0, factory.dataset.class_names[0])]
                )
                assert ack["durable"] is True
        finally:
            thread.stop()


class TestIdempotentLabels:
    def test_retried_token_replays_ack_exactly_once(self, factory, dataset):
        manager = SessionManager(factory, max_resident=2)
        thread = ServerThread(manager, ServingConfig())
        host, port = thread.start()
        try:
            with ServingClient(host, port) as client:
                client.open("alice")
                batch = client.explore("alice", batch_size=2)
                labels = [
                    (s["vid"], s["start"], s["end"], dataset.class_names[0])
                    for s in batch["segments"]
                ]
                first = client.label("alice", labels, finish=True, token="tok-1")
                replayed = client.label("alice", labels, finish=True, token="tok-1")
                assert first == {"stored": 2, "durable": True, "finished": True}
                assert replayed == {**first, "replayed": True}
                assert client.open("alice")["labels"] == len(labels)  # applied once
            assert manager.metrics.counter("serving.label_replays").value == 1
        finally:
            thread.stop()

    def test_tokens_survive_eviction(self, factory, dataset):
        manager = SessionManager(factory, max_resident=1)
        thread = ServerThread(manager, ServingConfig())
        host, port = thread.start()
        try:
            with ServingClient(host, port) as client:
                client.open("alice")
                batch = client.explore("alice", batch_size=2)
                labels = [
                    (s["vid"], s["start"], s["end"], dataset.class_names[0])
                    for s in batch["segments"]
                ]
                client.label("alice", labels, finish=True, token="tok-evict")
                client.open("bob")  # evicts alice (max_resident=1)
                assert not manager.is_resident("alice")
                replayed = client.label("alice", labels, finish=True, token="tok-evict")
                assert replayed["replayed"] is True
                assert client.open("alice")["labels"] == len(labels)
        finally:
            thread.stop()


class TestWorkloadRetries:
    def test_flaky_adapter_sheds_then_retrying_adapter_recovers(self, manager, dataset):
        user = ScriptedUser("alice", 3, dataset.class_names, cycles=2)
        manager.open("alice")
        flaky = FlakyAdapter(LocalSessionAdapter(manager, "alice"), period=2)
        adapter = RetryingAdapter(
            flaky,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
            sleep=lambda _s: None,
        )
        user.run(adapter)
        # Every operation was shed exactly once, then succeeded on retry.
        assert flaky.failures > 0
        assert flaky.calls == 2 * flaky.failures
        assert adapter.retries == flaky.failures
        with manager.acquire("alice", create=False) as vocal:
            assert len(vocal.session.storage.labels) == len(user.acked_labels)

    def test_retry_budget_exhaustion_reraises_the_shed(self, manager, dataset):
        from repro.exceptions import AdmissionError

        manager.open("alice")
        flaky = FlakyAdapter(LocalSessionAdapter(manager, "alice"), period=5)
        adapter = RetryingAdapter(
            flaky,
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
            sleep=lambda _s: None,
        )
        with pytest.raises(AdmissionError, match="injected shed"):
            adapter.explore(2)  # attempts 1 and 2 both land on shed calls
