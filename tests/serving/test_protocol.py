"""Unit tests for the newline-delimited JSON serving protocol."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import AdmissionError, ProtocolError
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    OPS,
    REQUEST_CLASSES,
    SESSION_OPS,
    decode_line,
    encode_message,
    error_response,
    ok_response,
    request_class,
    valid_session_name,
    validate_request,
)


class TestFraming:
    def test_encode_round_trips_through_decode(self):
        doc = {"id": 7, "op": "explore", "session": "alice", "batch_size": 3}
        assert decode_line(encode_message(doc)) == doc

    def test_encode_is_one_line(self):
        line = encode_message({"op": "ping", "note": "a\nb"})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_line(b"{nope\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1, 2]\n")

    def test_decode_rejects_non_utf8(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_line(b"\xff\xfe\n")

    def test_oversized_frames_rejected_both_ways(self):
        huge = {"op": "ping", "pad": "x" * MAX_LINE_BYTES}
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_message(huge)
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_line(json.dumps(huge).encode() + b"\n")


class TestValidation:
    def test_known_ops_round_trip(self):
        for op in OPS:
            doc = {"id": 1, "op": op}
            if op in SESSION_OPS:
                doc["session"] = "alice"
            assert validate_request(doc)[0] == op

    def test_request_requires_an_id(self):
        with pytest.raises(ProtocolError, match="'id'"):
            validate_request({"op": "ping"})

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"id": 1, "op": "frobnicate"})

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"id": 1, "session": "alice"})

    def test_session_ops_require_a_session(self):
        for op in sorted(SESSION_OPS):
            with pytest.raises(ProtocolError, match="session"):
                validate_request({"id": 1, "op": op})

    def test_illegal_session_name_rejected(self):
        with pytest.raises(ProtocolError, match="session"):
            validate_request({"id": 1, "op": "open", "session": "../escape"})

    @pytest.mark.parametrize(
        "name,ok",
        [
            ("alice", True),
            ("user-7.v2_x", True),
            ("a" * 64, True),
            ("a" * 65, False),
            ("", False),
            (".hidden", False),
            ("has space", False),
            ("sub/dir", False),
        ],
    )
    def test_session_name_grammar(self, name, ok):
        assert valid_session_name(name) is ok


class TestRequestClasses:
    def test_slo_classes_cover_the_four_paper_operations(self):
        assert REQUEST_CLASSES == ("explore", "label", "search", "predict")

    def test_finish_accounts_as_label_work(self):
        assert request_class("finish") == "label"

    def test_control_ops_are_unaccounted(self):
        for op in ("open", "stats", "close", "ping", "shutdown"):
            assert request_class(op) is None


class TestResponses:
    def test_ok_response_shape(self):
        doc = ok_response(3, {"x": 1})
        assert doc == {"id": 3, "ok": True, "result": {"x": 1}}

    def test_error_response_carries_type_and_message(self):
        doc = error_response(4, AdmissionError("full up"))
        assert doc["ok"] is False
        assert doc["error"]["type"] == "AdmissionError"
        assert "full up" in doc["error"]["message"]

    def test_error_response_without_id(self):
        assert error_response(None, ProtocolError("bad"))["id"] is None
