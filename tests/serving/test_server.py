"""End-to-end tests for the asyncio server and the blocking client."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.config import ServingConfig
from repro.exceptions import (
    AdmissionError,
    ProtocolError,
    ServingError,
    SessionNotFoundError,
)
from repro.serving import (
    RemoteSessionAdapter,
    RetryPolicy,
    ScriptedUser,
    ServerThread,
    ServingClient,
    SessionManager,
    session_fingerprint,
)
from repro.serving.client import ConnectionBrokenError, RemoteError
from repro.serving.protocol import MAX_LINE_BYTES, PROTOCOL_VERSION, decode_line


@pytest.fixture
def server(factory):
    """A live server over a fresh manager; stopped (and checkpointed) at exit."""
    manager = SessionManager(factory, max_resident=2)
    thread = ServerThread(
        manager, ServingConfig(explore_slo_s=30.0, label_slo_s=30.0)
    )
    host, port = thread.start()
    try:
        yield {"host": host, "port": port, "manager": manager, "thread": thread}
    finally:
        thread.stop()


@pytest.fixture
def client(server):
    with ServingClient(server["host"], server["port"]) as instance:
        yield instance


class TestControlPlane:
    def test_ping_reports_protocol_version(self, client):
        assert client.ping() == {"pong": True, "version": PROTOCOL_VERSION}

    def test_unknown_session_raises_locally(self, client):
        with pytest.raises(SessionNotFoundError):
            client.explore("ghost", batch_size=2)

    def test_malformed_line_gets_protocol_error_response(self, server):
        with socket.create_connection((server["host"], server["port"]), timeout=10) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"this is not json\n")
            handle.flush()
            from repro.serving.protocol import decode_line

            response = decode_line(handle.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"

    def test_request_without_id_rejected(self, server):
        with socket.create_connection((server["host"], server["port"]), timeout=10) as sock:
            handle = sock.makefile("rwb")
            handle.write(b'{"op": "ping"}\n')
            handle.flush()
            from repro.serving.protocol import decode_line

            response = decode_line(handle.readline())
            assert response["ok"] is False
            assert "id" in response["error"]["message"]

    def test_stats_exposes_manager_and_slo_sections(self, client):
        client.open("alice")
        client.explore("alice", batch_size=2)
        client.finish("alice")
        stats = client.stats()
        assert stats["manager"]["resident_count"] == 1
        assert stats["slo"]["classes"]["explore"]["count"] == 1
        # finish is accounted under the label class.
        assert stats["slo"]["classes"]["label"]["count"] == 1
        assert stats["slo"]["classes"]["explore"]["budget_s"] == 30.0


class TestProtocolLimits:
    def test_oversized_frame_gets_typed_error_before_disconnect(self, server):
        # The client's own encode_message would refuse such a frame, so a raw
        # socket plays the misbehaving peer here.
        with socket.create_connection((server["host"], server["port"]), timeout=10) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"x" * (MAX_LINE_BYTES + 1024) + b"\n")
            handle.flush()
            response = decode_line(handle.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            assert f"frame exceeds {MAX_LINE_BYTES} bytes" in response["error"]["message"]
            # Framing is lost, so the server must then drop the connection.
            assert handle.readline() == b""


class TestSessionOps:
    def test_full_explore_label_cycle(self, client, dataset):
        client.open("alice")
        batch = client.explore("alice", batch_size=3)
        assert batch["iteration"] == 1
        assert len(batch["segments"]) == 3
        ack = client.label(
            "alice",
            [(s["vid"], s["start"], s["end"], dataset.class_names[0]) for s in batch["segments"]],
            finish=True,
        )
        assert ack == {"stored": 3, "durable": True, "finished": True}
        summary = client.open("alice")
        assert summary["iteration"] == 1
        assert summary["labels"] == 3

    def test_search_and_predict_round_trip(self, client, dataset):
        client.open("alice")
        batch = client.explore("alice", batch_size=2)
        client.label(
            "alice",
            [(s["vid"], s["start"], s["end"], dataset.class_names[0]) for s in batch["segments"]],
            finish=True,
        )
        clip = batch["segments"][0]
        hits = client.search("alice", clip=(clip["vid"], clip["start"], clip["end"]), k=3)
        assert len(hits["hits"]) == 3
        assert all(h["distance"] >= 0 for h in hits["hits"])
        prediction = client.predict("alice", clip["vid"], clip["start"], clip["end"])
        assert len(prediction["segments"]) >= 1

    def test_close_pages_session_to_disk(self, client, server):
        client.open("alice")
        assert server["manager"].is_resident("alice")
        client.close_session("alice")
        assert not server["manager"].is_resident("alice")
        # Still reachable: the next request restores it from disk.
        assert client.open("alice")["session"] == "alice"

    def test_label_validation_errors_are_protocol_errors(self, client):
        client.open("alice")
        with pytest.raises(ProtocolError, match="labels"):
            client._call("label", session="alice", labels=[])
        with pytest.raises(ProtocolError, match="label entries"):
            client._call("label", session="alice", labels=["nope"])

    def test_application_errors_surface_as_remote_errors(self, client):
        client.open("alice")
        # Finishing with no open iteration is a session-level error.
        with pytest.raises(RemoteError):
            client.finish("alice")


class TestAdmissionControl:
    def test_overload_sheds_with_admission_error(self, factory, monkeypatch):
        manager = SessionManager(factory, max_resident=2)
        thread = ServerThread(
            manager, ServingConfig(max_queue_depth=1, worker_threads=2)
        )
        release = threading.Event()
        original = thread.server._execute

        def slow_execute(op, doc, deadline=None):
            if doc.get("slow"):
                release.wait(30)
            return original(op, doc, deadline)

        monkeypatch.setattr(thread.server, "_execute", slow_execute)
        host, port = thread.start()
        try:
            with ServingClient(host, port) as blocker, ServingClient(host, port) as probe:
                result: dict = {}

                def occupy():
                    result["slow"] = blocker._call("ping", slow=True)

                worker = threading.Thread(target=occupy)
                worker.start()
                deadline = time.time() + 10
                while thread.server._inflight < 1 and time.time() < deadline:
                    time.sleep(0.01)
                with pytest.raises(AdmissionError, match="overloaded"):
                    probe.ping()
                release.set()
                worker.join(30)
                assert result["slow"]["pong"] is True
                # Capacity is back: the same client is served now.
                assert probe.ping()["pong"] is True
        finally:
            release.set()
            thread.stop()


class TestControlPlaneUnderLoad:
    def test_ping_stats_shutdown_stay_responsive_under_load(self, factory, dataset):
        """Control traffic keeps answering while scripted users saturate the
        pool, and a shutdown issued at the end drains cleanly."""
        manager = SessionManager(factory, max_resident=2)
        thread = ServerThread(
            manager, ServingConfig(worker_threads=2, max_queue_depth=8)
        )
        host, port = thread.start()

        def policy() -> RetryPolicy:
            return RetryPolicy(max_attempts=6, base_delay_s=0.02, max_delay_s=0.2, seed=3)

        users = [
            ScriptedUser(name, seed, dataset.class_names, cycles=2)
            for seed, name in enumerate(("alice", "bob"))
        ]
        errors: list[Exception] = []

        def drive(user: ScriptedUser) -> None:
            try:
                with ServingClient(host, port, timeout=30.0, retry=policy()) as c:
                    c.open(user.name)
                    user.run(RemoteSessionAdapter(c, user.name))
            except Exception as exc:  # surfaced to the main thread below
                errors.append(exc)

        workers = [threading.Thread(target=drive, args=(user,)) for user in users]
        try:
            for worker in workers:
                worker.start()
            with ServingClient(host, port, timeout=30.0, retry=policy()) as control:
                probes = 0
                while any(worker.is_alive() for worker in workers):
                    assert control.ping()["pong"] is True
                    stats = control.stats()
                    assert stats["manager"]["resident_count"] <= 2
                    probes += 1
                    time.sleep(0.05)
                assert probes >= 1, "the load finished before a single probe ran"
                for worker in workers:
                    worker.join(60)
                assert not errors, f"scripted users failed under load: {errors}"
                assert control.shutdown() == {"stopping": True}
            assert thread.wait(30)
        finally:
            for worker in workers:
                worker.join(60)
        # The drain checkpointed every session the load created.
        for user in users:
            assert factory.exists(user.name)


class TestHungShutdown:
    def test_stop_raises_loudly_when_the_loop_thread_hangs(self, factory, monkeypatch):
        manager = SessionManager(factory, max_resident=2)
        thread = ServerThread(
            manager, ServingConfig(worker_threads=1, drain_timeout_s=0.1)
        )
        release = threading.Event()
        original = thread.server._execute

        def stuck_execute(op, doc, deadline=None):
            if doc.get("stuck"):
                release.wait(30)
            return original(op, doc, deadline)

        monkeypatch.setattr(thread.server, "_execute", stuck_execute)
        host, port = thread.start()
        client = ServingClient(host, port)
        worker = threading.Thread(target=lambda: client._call("ping", stuck=True))
        try:
            worker.start()
            deadline = time.time() + 10
            while thread.server._inflight < 1 and time.time() < deadline:
                time.sleep(0.01)
            # The lone worker thread is wedged, so the drain cannot finish:
            # stop() must fail loudly instead of silently abandoning sessions.
            with pytest.raises(ServingError, match="failed to stop"):
                thread.stop(timeout=0.5)
        finally:
            release.set()
            worker.join(30)
            client.close()
        # Unwedged, the already-requested shutdown completes cleanly.
        assert thread.wait(30)


class TestBrokenConnectionRecovery:
    def test_mid_reply_timeout_marks_broken_and_reconnects(self, factory, monkeypatch):
        manager = SessionManager(factory, max_resident=2)
        thread = ServerThread(manager, ServingConfig(worker_threads=2))
        original = thread.server._execute

        def dawdling_execute(op, doc, deadline=None):
            if doc.get("dawdle"):
                time.sleep(0.8)  # longer than the client's socket timeout
            return original(op, doc, deadline)

        monkeypatch.setattr(thread.server, "_execute", dawdling_execute)
        host, port = thread.start()
        try:
            with ServingClient(host, port, timeout=0.3) as client:
                assert client.ping()["pong"] is True
                with pytest.raises(ConnectionBrokenError, match="timed out"):
                    client._call("ping", dawdle=True)
                # The stream still holds the late reply; reusing it would
                # answer the wrong request, so the connection is poisoned...
                assert client._broken
                # ...and the next call transparently reconnects.
                assert client.ping()["pong"] is True
                assert client.reconnects == 1
        finally:
            thread.stop()


class TestRestartRecovery:
    def test_restarted_server_recovers_every_session(self, dataset, factory):
        users = {
            name: ScriptedUser(name, seed, dataset.class_names, cycles=2)
            for seed, name in enumerate(("alice", "bob", "carol"))
        }
        manager = SessionManager(factory, max_resident=2)
        thread = ServerThread(manager, ServingConfig())
        host, port = thread.start()
        fingerprints = {}
        try:
            with ServingClient(host, port) as client:
                for name, user in users.items():
                    client.open(name)
                    user.run(RemoteSessionAdapter(client, name))
            for name in users:
                with manager.acquire(name) as vocal:
                    fingerprints[name] = session_fingerprint(vocal)
        finally:
            thread.stop()  # graceful: checkpoints every session

        manager = SessionManager(factory, max_resident=2)
        thread = ServerThread(manager, ServingConfig())
        host, port = thread.start()
        try:
            with ServingClient(host, port) as client:
                stats = client.stats()
                assert stats["manager"]["sessions_on_disk"] == 3
                for name in users:
                    client.open(name)
            for name in users:
                with manager.acquire(name) as vocal:
                    assert session_fingerprint(vocal) == fingerprints[name], (
                        f"{name} did not survive the restart bit-identically"
                    )
        finally:
            thread.stop()

    def test_shutdown_op_stops_the_server(self, factory):
        manager = SessionManager(factory, max_resident=2)
        thread = ServerThread(manager, ServingConfig())
        host, port = thread.start()
        with ServingClient(host, port) as client:
            client.open("alice")
            assert client.shutdown() == {"stopping": True}
        assert thread.wait(30)
        # Graceful shutdown checkpointed the session.
        assert factory.exists("alice")
        with pytest.raises(ServingError):
            manager.open("alice")  # manager is closed
