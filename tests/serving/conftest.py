"""Shared fixtures for the serving-layer tests.

Every test runs against the durability suite's micro dataset (the smallest
corpus that still trains models) and a per-test session root, so evict /
restore / crash-recovery cycles are cheap enough to repeat many times.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# The crash-injection harness lives with the durability tests (no package
# __init__ files in the test tree, so import it by path like its own suite).
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "durability"))

from harness import micro_dataset  # noqa: E402

from repro.serving import CorpusSessionFactory, SessionManager  # noqa: E402

#: The micro dataset generates exactly these extractors' features.
CANDIDATE_FEATURES = ("r3d", "mvit")


@pytest.fixture(scope="session")
def dataset():
    """Shared read-only corpus; sessions never mutate it."""
    return micro_dataset(seed=3)


@pytest.fixture
def factory(dataset, tmp_path):
    """Session factory over a fresh per-test durable root."""
    return CorpusSessionFactory(
        dataset,
        tmp_path / "sessions",
        base_seed=11,
        candidate_features=CANDIDATE_FEATURES,
    )


@pytest.fixture
def manager(factory):
    """A two-resident manager (evictions start at the third session)."""
    with SessionManager(factory, max_resident=2) as instance:
        yield instance
