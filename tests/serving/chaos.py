"""Network fault-injection harness for the serving layer.

:class:`ChaosProxy` is a line-aware TCP proxy that sits between a
:class:`~repro.serving.client.ServingClient` and a live
:class:`~repro.serving.server.ExploreServer` and injects faults at named
*fault points* — the places a real network can betray a request/response
exchange:

========================  =====================================================
fault point               what the client/server observe
========================  =====================================================
``connect_reset``         the Nth accepted connection is torn down immediately
``request_reset``         the request is swallowed; both sides lose the
                          connection (the server never saw the request)
``request_partial``       the server receives a truncated frame, then EOF
``request_stall``         the request is delayed past the client's socket
                          timeout, then still delivered (the classic
                          "timed out but the work happened" hazard)
``request_duplicate``     the server receives the same frame twice (one
                          surplus response is swallowed to keep framing)
``response_reset``        the work happened; the ack is lost with the
                          connection
``response_partial``      the client receives a truncated, undecodable reply
``response_stall``        the ack is delayed past the client's socket timeout
========================  =====================================================

Faults are scheduled deterministically by *ordinal*: ``schedule(fault, at=n)``
fires on the ``n``-th proxied request (1-based, counted across all
connections), or on the ``n``-th accepted connection for ``connect_reset``.
Everything the proxy actually injected is recorded in :attr:`ChaosProxy.fired`
so tests can assert the fault really happened.

The harness is intentionally protocol-aware but policy-free: it never looks
inside the JSON, so the exactly-once and no-lost-ack guarantees it probes are
enforced entirely by the serving layer (idempotency tokens, the durable
journal, the session supervisor), not by the test plumbing.

:func:`dump_artifact` appends machine-readable scenario results to the file
named by the ``CHAOS_ARTIFACT`` environment variable (a no-op when unset);
CI uploads it from the exhaustive ``-m slow`` matrix run.
"""

from __future__ import annotations

import json
import os
import socket
import threading

__all__ = ["FAULT_POINTS", "ChaosProxy", "dump_artifact"]

#: Every fault point the proxy can inject, in documentation order.
FAULT_POINTS = (
    "connect_reset",
    "request_reset",
    "request_partial",
    "request_stall",
    "request_duplicate",
    "response_reset",
    "response_partial",
    "response_stall",
)

#: Fault points scheduled by connection ordinal instead of request ordinal.
_CONNECTION_FAULTS = frozenset({"connect_reset"})


class ChaosProxy:
    """A line-aware TCP proxy injecting scheduled faults between peers.

    One handler thread per client connection pumps whole newline-delimited
    frames in lockstep (request upstream, response back), which is exactly
    the serving protocol's exchange pattern — so a fault always lands on a
    well-defined frame boundary and the ``fired`` log names the request it
    hit.

    Usage::

        proxy = ChaosProxy(server_host, server_port)
        host, port = proxy.start()
        proxy.schedule("response_reset", at=3)   # 3rd request loses its ack
        ...  # drive a ServingClient at (host, port)
        proxy.stop()
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        stall_s: float = 1.5,
    ) -> None:
        """Create a proxy in front of ``(upstream_host, upstream_port)``.

        Args:
            upstream_host: Real server host.
            upstream_port: Real server port.
            stall_s: Delay injected by the ``*_stall`` faults; pick it
                larger than the client's socket timeout so a stall is
                observed as a timeout, not a slow success.
        """
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.stall_s = float(stall_s)
        self.host: str | None = None
        self.port: int | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._live_sockets: set[socket.socket] = set()
        self._handlers: list[threading.Thread] = []
        self._request_plan: dict[int, str] = {}
        self._connection_plan: dict[int, str] = {}
        #: Requests proxied so far (across all connections).
        self.requests = 0
        #: Connections accepted so far.
        self.connections = 0
        #: ``(fault, ordinal)`` pairs actually injected, in firing order.
        self.fired: list[tuple[str, int]] = []

    # ----------------------------------------------------------------- control
    def start(self) -> tuple[str, int]:
        """Bind, start accepting, and return the proxy's ``(host, port)``."""
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(32)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._accept_thread.start()
        return self.host, self.port

    def stop(self) -> None:
        """Close the listener and every live pipe (idempotent)."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._lock:
            sockets = list(self._live_sockets)
        for sock in sockets:
            self._close(sock)
        if self._accept_thread is not None:
            self._accept_thread.join(5)
            self._accept_thread = None
        for handler in self._handlers:
            handler.join(5)
        self._handlers.clear()

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def schedule(self, fault: str, at: int = 1) -> None:
        """Arm ``fault`` to fire on ordinal ``at`` (1-based).

        Request-scoped faults count proxied requests across all connections;
        ``connect_reset`` counts accepted connections.
        """
        if fault not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {fault!r}; pick from {FAULT_POINTS}")
        if at < 1:
            raise ValueError(f"ordinal must be >= 1, got {at}")
        with self._lock:
            if fault in _CONNECTION_FAULTS:
                self._connection_plan[at] = fault
            else:
                self._request_plan[at] = fault

    # ---------------------------------------------------------------- plumbing
    def _close(self, sock: socket.socket | None) -> None:
        """Best-effort close; drops the socket from the live set."""
        if sock is None:
            return
        with self._lock:
            self._live_sockets.discard(sock)
        try:
            sock.close()
        except OSError:
            pass

    def _track(self, sock: socket.socket) -> None:
        with self._lock:
            self._live_sockets.add(sock)

    def _take_connection_fault(self) -> str | None:
        with self._lock:
            self.connections += 1
            fault = self._connection_plan.pop(self.connections, None)
            if fault is not None:
                self.fired.append((fault, self.connections))
            return fault

    def _take_request_fault(self) -> tuple[str | None, int]:
        with self._lock:
            self.requests += 1
            fault = self._request_plan.pop(self.requests, None)
            if fault is not None:
                self.fired.append((fault, self.requests))
            return fault, self.requests

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                client_sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            self._track(client_sock)
            if self._take_connection_fault() == "connect_reset":
                self._close(client_sock)
                continue
            handler = threading.Thread(
                target=self._pump, args=(client_sock,), name="chaos-pump", daemon=True
            )
            handler.start()
            self._handlers.append(handler)

    def _pump(self, client_sock: socket.socket) -> None:
        """Frame-by-frame exchange loop for one client connection."""
        upstream: socket.socket | None = None
        try:
            upstream = socket.create_connection(
                (self.upstream_host, self.upstream_port), timeout=30
            )
            self._track(upstream)
            client_reader = client_sock.makefile("rb")
            upstream_reader = upstream.makefile("rb")
            while not self._stopping.is_set():
                request = client_reader.readline()
                if not request:
                    return  # client went away cleanly
                fault, _ordinal = self._take_request_fault()
                if fault == "request_reset":
                    return  # swallow the frame; both sides lose the pipe
                if fault == "request_partial":
                    # Truncate mid-frame, then EOF upstream: the server must
                    # answer with a typed ProtocolError, not crash or hang.
                    upstream.sendall(request[: max(1, len(request) // 2)])
                    return
                if fault == "request_stall":
                    # Delivered late: the client has already timed out, but
                    # the server-side work still happens — the hazard the
                    # idempotency tokens exist for.
                    self._stopping.wait(self.stall_s)
                upstream.sendall(request)
                if fault == "request_duplicate":
                    upstream.sendall(request)
                response = upstream_reader.readline()
                if fault == "request_duplicate":
                    # Swallow the surplus response so request/response
                    # framing stays aligned for the client.
                    upstream_reader.readline()
                if not response:
                    return  # server went away (e.g. shutdown)
                if fault == "response_reset":
                    return  # the work happened; the ack is lost
                if fault == "response_partial":
                    client_sock.sendall(response[: max(1, len(response) // 2)])
                    return
                if fault == "response_stall":
                    self._stopping.wait(self.stall_s)
                client_sock.sendall(response)
        except OSError:
            pass  # either side tore the pipe down mid-exchange
        finally:
            self._close(client_sock)
            self._close(upstream)


# ----------------------------------------------------------------- artifacts
def dump_artifact(record: dict) -> None:
    """Append one scenario record to the ``CHAOS_ARTIFACT`` file (JSONL).

    A no-op when the environment variable is unset, so local test runs stay
    side-effect free; the CI chaos matrix sets it and uploads the file.
    """
    path = os.environ.get("CHAOS_ARTIFACT")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
