"""Property test: eviction is invisible (satellite of PR 8).

For a seeded scripted user, pausing the script at a random closed-iteration
boundary, paging the session to disk, and restoring it on the next request
must leave the session *bit-identical* to one that never left memory: the
same labels, model parameters, bandit accumulators, RNG streams, simulated
clock, and per-iteration latency records — and the same responses to every
subsequent request.
"""

from __future__ import annotations

import random

import pytest

from repro.serving import (
    LocalSessionAdapter,
    ScriptedUser,
    SessionManager,
    session_fingerprint,
)


def run_script(factory, name: str, seed: int, vocabulary, evict_at: int | None):
    """Run one user's full script; optionally evict+restore at a boundary.

    Returns ``(fingerprint, history, latency_records, labels)``.
    """
    user = ScriptedUser(name, seed, vocabulary, cycles=3)
    with SessionManager(factory, max_resident=4) as manager:
        manager.open(name)
        adapter = LocalSessionAdapter(manager, name)
        if evict_at is None:
            user.run(adapter)
        else:
            user.run(adapter, stop=evict_at + 1)
            manager.evict(name)  # checkpoint + release; restored on next use
            assert not manager.is_resident(name)
            user.run(adapter, start=evict_at + 1)
        with manager.acquire(name) as vocal:
            session = vocal.session
            latencies = [
                (rec.iteration, rec.visible_latency, rec.background_time_used)
                for rec in session.scheduler.iteration_records()
            ]
            labels = sorted(
                (label.vid, label.start, label.end, label.label)
                for label in session.storage.labels.all()
            )
            fingerprint = session_fingerprint(vocal)
        if evict_at is not None:
            assert manager.stats()["restores"] == 1
    return fingerprint, user.history, latencies, labels


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_evicted_and_restored_session_is_bit_identical(dataset, factory, seed):
    name = f"user{seed}"
    vocabulary = dataset.class_names
    baseline = run_script(factory, name, seed, vocabulary, evict_at=None)

    # The baseline manager checkpointed the session on close; start clean.
    probe = ScriptedUser(name, seed, vocabulary, cycles=3)
    boundary = random.Random(seed).choice(probe.closed_boundaries)

    import shutil

    shutil.rmtree(factory.root)
    evicted = run_script(factory, name, seed, vocabulary, evict_at=boundary)

    assert evicted[0] == baseline[0], (
        f"state diverged after evict+restore at step {boundary}"
    )
    assert evicted[1] == baseline[1], "user-visible responses diverged"
    assert evicted[2] == baseline[2], "latency records diverged"
    assert evicted[3] == baseline[3], "stored labels diverged"


def test_every_closed_boundary_is_safe(dataset, factory):
    """Exhaustive sweep over one script: every legal pause point round-trips."""
    import shutil

    name = "sweep"
    vocabulary = dataset.class_names
    baseline = run_script(factory, name, 9, vocabulary, evict_at=None)
    boundaries = ScriptedUser(name, 9, vocabulary, cycles=3).closed_boundaries
    for boundary in boundaries:
        shutil.rmtree(factory.root)
        evicted = run_script(factory, name, 9, vocabulary, evict_at=boundary)
        assert evicted[0] == baseline[0], f"diverged at boundary {boundary}"
        assert evicted[1] == baseline[1]
