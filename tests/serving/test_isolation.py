"""Session isolation under interleaving and concurrency (satellite of PR 8).

Sessions share one read-only feature corpus but own private label stores,
model registries, bandits, and RNG streams.  The proof of isolation used
here: a session's final state must be *bit-identical* whether its script ran
alone in its own manager or interleaved/concurrent with other sessions on a
shared, eviction-pressured manager.  Any leak of labels, model updates, or
bandit pulls across sessions would shift the fingerprint.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.serving import (
    CorpusSessionFactory,
    LocalSessionAdapter,
    ScriptedUser,
    SessionManager,
    session_fingerprint,
)

USERS = ("alice", "bob", "carol", "dave")


def make_factory(dataset, root):
    return CorpusSessionFactory(
        dataset, root, base_seed=11, candidate_features=("r3d", "mvit")
    )


def solo_outcome(dataset, root, name: str, seed: int):
    """Run one user alone in a private manager; return (fingerprint, labels)."""
    factory = make_factory(dataset, root)
    user = ScriptedUser(name, seed, dataset.class_names, cycles=2)
    with SessionManager(factory, max_resident=2) as manager:
        manager.open(name)
        user.run(LocalSessionAdapter(manager, name))
        with manager.acquire(name) as vocal:
            return session_fingerprint(vocal), list(user.acked_labels)


@pytest.fixture(scope="module")
def solo(dataset, tmp_path_factory):
    """Baseline fingerprints: every user run in isolation."""
    return {
        name: solo_outcome(dataset, tmp_path_factory.mktemp(f"solo-{name}"), name, seed)
        for seed, name in enumerate(USERS)
    }


def shared_fingerprints(manager, users):
    results = {}
    for name in USERS:
        with manager.acquire(name) as vocal:
            stored = sorted(
                (label.vid, label.start, label.end, label.label)
                for label in vocal.session.storage.labels.all()
            )
            assert stored == sorted(users[name].acked_labels), (
                f"{name} observed labels it never sent"
            )
            results[name] = session_fingerprint(vocal)
    return results


@pytest.mark.parametrize("fuzz_seed", [0, 1])
def test_interleaved_sessions_match_solo_runs(dataset, tmp_path, solo, fuzz_seed):
    """Seeded fuzz: randomly interleave all scripts through one manager."""
    factory = make_factory(dataset, tmp_path / "shared")
    users = {
        name: ScriptedUser(name, seed, dataset.class_names, cycles=2)
        for seed, name in enumerate(USERS)
    }
    rng = random.Random(fuzz_seed)
    with SessionManager(factory, max_resident=2) as manager:
        for name in USERS:
            manager.open(name)
        adapters = {name: LocalSessionAdapter(manager, name) for name in USERS}
        cursors = {name: 0 for name in USERS}
        pending = [name for name in USERS if cursors[name] < len(users[name])]
        while pending:
            name = rng.choice(pending)
            users[name].run_step(adapters[name], cursors[name])
            cursors[name] += 1
            pending = [n for n in USERS if cursors[n] < len(users[n])]
        fingerprints = shared_fingerprints(manager, users)
        stats = manager.stats()

    # Eviction pressure was real (4 sessions, 2 resident), yet nothing leaked.
    assert stats["evictions"] > 0
    for name in USERS:
        assert fingerprints[name] == solo[name][0], f"{name} diverged from solo run"


def test_concurrent_clients_share_corpus_but_nothing_else(dataset, tmp_path, solo):
    """Four threads drive four sessions through one manager simultaneously."""
    factory = make_factory(dataset, tmp_path / "shared")
    users = {
        name: ScriptedUser(name, seed, dataset.class_names, cycles=2)
        for seed, name in enumerate(USERS)
    }
    errors = []
    with SessionManager(factory, max_resident=2) as manager:
        for name in USERS:
            manager.open(name)

        def drive(name: str) -> None:
            try:
                users[name].run(LocalSessionAdapter(manager, name))
            except Exception as exc:  # surfaced after join
                errors.append((name, exc))

        threads = [threading.Thread(target=drive, args=(name,)) for name in USERS]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not errors, f"concurrent scripts failed: {errors}"
        fingerprints = shared_fingerprints(manager, users)

    for name in USERS:
        assert fingerprints[name] == solo[name][0], f"{name} diverged from solo run"
