"""Network chaos matrix: no acked label lost, exactly-once retried labels.

Each scenario runs a seeded :class:`ScriptedUser` against a live server
*through* a :class:`chaos.ChaosProxy` that injects one scheduled network
fault, with a retry-enabled :class:`ServingClient` doing the recovering.
The invariants checked after every scenario, whatever the fault:

* the script completes (retries + reconnects absorb the fault);
* the durable label store holds **exactly** the multiset of labels the
  client was acked — nothing acknowledged is lost, nothing retried is
  double-applied (the idempotency-token guarantee);
* recovery is deterministic: restoring the session from its durable state
  twice yields bit-identical fingerprints.

The default run covers a bounded smoke matrix (CI's chaos-smoke step); the
``-m slow`` matrix crosses **every** fault point with server-side
quarantine and worker-kill injections and writes a JSONL artifact when
``CHAOS_ARTIFACT`` is set.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

import pytest

from chaos import FAULT_POINTS, ChaosProxy, dump_artifact

from repro.config import ServingConfig
from repro.exceptions import AdmissionError, SessionQuarantinedError
from repro.serving import (
    RemoteSessionAdapter,
    RetryPolicy,
    ScriptedUser,
    ServerThread,
    ServingClient,
    SessionManager,
    session_fingerprint,
)
from repro.serving.server import ExploreServer


class ServerFaultInjector:
    """One-shot server-side failure armed from the test, fired in a worker.

    ``quarantine`` raises before touching the session (a clean unexpected
    crash); ``worker_kill`` mutates the session first and then dies — the
    worst case the supervisor must roll back.  Installed by monkeypatching
    the explore executor, so the failure happens *inside* the supervised
    region exactly like a real worker fault.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.armed = False
        self.fired = 0

    def install(self, monkeypatch) -> "ServerFaultInjector":
        """Patch :meth:`ExploreServer._execute_explore` to fire when armed."""
        original = ExploreServer._execute_explore
        injector = self

        def wrapped(server, vocal, doc):
            if injector.armed:
                injector.armed = False
                injector.fired += 1
                if injector.kind == "worker_kill":
                    vocal.explore(1)  # dirty the session, then die mid-request
                raise RuntimeError(f"injected {injector.kind} failure")
            return original(server, vocal, doc)

        monkeypatch.setattr(ExploreServer, "_execute_explore", wrapped)
        return self


def _first_step(user: ScriptedUser, op: str, skip: int = 0) -> int:
    """Index of the ``skip``-th script step with the given op."""
    indices = [i for i, step in enumerate(user.steps) if step["op"] == op]
    return indices[skip]


def run_chaos_scenario(
    factory,
    user: ScriptedUser,
    fault: str | None = None,
    at: int = 1,
    injector: ServerFaultInjector | None = None,
    arm_at: int | None = None,
):
    """Run one scripted user through a faulty proxy; returns the proxy.

    ``at`` is the proxy ordinal the fault fires on (request ordinal, or
    connection ordinal for ``connect_reset``); ``arm_at`` is the script step
    index before which the server-side injector is armed.  Script steps that
    fail with :class:`SessionQuarantinedError` are retried — the error's own
    recovery report promises that is safe.
    """
    manager = SessionManager(factory, max_resident=2)
    thread = ServerThread(manager, ServingConfig(worker_threads=2))
    host, port = thread.start()
    proxy = ChaosProxy(host, port, stall_s=1.2)
    try:
        proxy_host, proxy_port = proxy.start()
        if fault is not None:
            proxy.schedule(fault, at=at)
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.02, max_delay_s=0.1, jitter=0.5, seed=9
        )
        with ServingClient(proxy_host, proxy_port, timeout=0.5, retry=policy) as client:
            client.open(user.name)
            adapter = RemoteSessionAdapter(client, user.name)
            index = 0
            pending_arm = arm_at
            while index < len(user):
                if injector is not None and index == pending_arm:
                    injector.armed = True
                    pending_arm = None  # arm once; the retried step runs clean
                try:
                    user.run_step(adapter, index)
                except SessionQuarantinedError:
                    continue  # rolled back to durable state; retry the step
                index += 1
            retries, reconnects = client.retries, client.reconnects
    finally:
        proxy.stop()
        thread.stop()  # graceful: checkpoints every session
    return proxy, retries, reconnects


def durable_state(factory, name: str) -> tuple[Counter, str]:
    """Restore the session from disk; returns (label multiset, fingerprint)."""
    with SessionManager(factory, max_resident=2) as manager:
        with manager.acquire(name, create=False) as vocal:
            labels = Counter(
                (entry.vid, entry.start, entry.end, entry.label)
                for entry in vocal.session.storage.labels.all()
            )
            return labels, session_fingerprint(vocal)


def assert_invariants(factory, user: ScriptedUser) -> str:
    """No acked label lost, none double-applied, recovery deterministic."""
    stored, fingerprint = durable_state(factory, user.name)
    acked = Counter(user.acked_labels)
    missing = acked - stored
    extra = stored - acked
    assert not missing, f"acked labels lost under chaos: {dict(missing)}"
    assert not extra, f"labels double-applied under chaos: {dict(extra)}"
    stored_again, fingerprint_again = durable_state(factory, user.name)
    assert stored_again == stored
    assert fingerprint_again == fingerprint, "recovery is not deterministic"
    return fingerprint


#: Bounded default matrix (CI chaos-smoke): a reconnect fault, a lost-ack
#: fault on a label (the flagship exactly-once case), and a duplicated frame.
SMOKE_FAULTS = ("connect_reset", "response_reset", "request_duplicate")


@pytest.mark.parametrize("fault", SMOKE_FAULTS)
def test_chaos_smoke(factory, dataset, fault):
    user = ScriptedUser("alice", 5, dataset.class_names, cycles=2)
    # Land request-scoped faults on the first label request: request ordinal
    # = 1 (the open) + step index + 1.  connect_reset tears the client's
    # initial connection instead.
    at = 1 if fault == "connect_reset" else _first_step(user, "label") + 2
    proxy, retries, reconnects = run_chaos_scenario(factory, user, fault=fault, at=at)
    assert proxy.fired, "the scheduled fault never fired"
    if fault != "request_duplicate":  # a duplicate is invisible to the client
        assert retries >= 1
        assert reconnects >= 1
    assert_invariants(factory, user)


@pytest.mark.slow
@pytest.mark.parametrize("injection", [None, "quarantine", "worker_kill"])
@pytest.mark.parametrize("fault", FAULT_POINTS)
def test_chaos_matrix(factory, dataset, fault, injection, monkeypatch):
    """Exhaustive matrix: every fault point x server-side failure injection."""
    user = ScriptedUser("alice", 7, dataset.class_names, cycles=2)
    at = 1 if fault == "connect_reset" else _first_step(user, "label") + 2
    injector = None
    arm_at = None
    if injection is not None:
        injector = ServerFaultInjector(injection).install(monkeypatch)
        # Arm on the second explore, after cycle 1's labels were acked — the
        # rollback must preserve them.
        arm_at = _first_step(user, "explore", skip=1)
    proxy, retries, reconnects = run_chaos_scenario(
        factory, user, fault=fault, at=at, injector=injector, arm_at=arm_at
    )
    assert proxy.fired, "the scheduled fault never fired"
    if injector is not None:
        assert injector.fired == 1, "the server-side injection never fired"
    fingerprint = assert_invariants(factory, user)
    dump_artifact(
        {
            "scenario": "chaos_matrix",
            "fault": fault,
            "injection": injection,
            "faults_fired": proxy.fired,
            "client_retries": retries,
            "client_reconnects": reconnects,
            "acked_labels": len(user.acked_labels),
            "fingerprint": fingerprint,
        }
    )


class TestGracefulDrain:
    def test_drain_completes_inflight_and_sheds_new_requests(self, factory, monkeypatch):
        manager = SessionManager(factory, max_resident=2)
        thread = ServerThread(
            manager, ServingConfig(worker_threads=2, drain_timeout_s=10.0)
        )
        release = threading.Event()
        original = thread.server._execute

        def gated(op, doc, deadline=None):
            if doc.get("slow"):
                release.wait(30)
            return original(op, doc, deadline)

        monkeypatch.setattr(thread.server, "_execute", gated)
        host, port = thread.start()
        slow = ServingClient(host, port)
        probe = ServingClient(host, port)
        control = ServingClient(host, port)
        result: dict = {}
        worker = threading.Thread(
            target=lambda: result.update(slow=slow._call("ping", slow=True))
        )
        try:
            worker.start()
            deadline = time.time() + 10
            while thread.server._inflight < 1 and time.time() < deadline:
                time.sleep(0.01)
            assert control.shutdown() == {"stopping": True}
            while not thread.server._draining and time.time() < deadline:
                time.sleep(0.01)
            # Mid-drain: new requests on existing connections are shed...
            with pytest.raises(AdmissionError, match="draining"):
                probe.ping()
            # ...while the in-flight request is allowed to finish.
            release.set()
            worker.join(30)
            assert result["slow"]["pong"] is True
            assert thread.wait(30)
        finally:
            release.set()
            for client in (slow, probe, control):
                client.close()
        # The drained server checkpointed the (empty) manager state cleanly.
        assert manager._closed
