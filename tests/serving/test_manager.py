"""Session manager behaviour: admission, LRU eviction, restore, lifecycle."""

from __future__ import annotations

import pytest

from repro.config import TelemetryConfig, VocalExploreConfig
from repro.exceptions import AdmissionError, ServingError, SessionNotFoundError
from repro.serving import CorpusSessionFactory, SessionManager


class TestFactory:
    def test_session_seed_is_name_derived_and_stable(self, factory):
        assert factory.session_seed("alice") == factory.session_seed("alice")
        assert factory.session_seed("alice") != factory.session_seed("bob")

    def test_rejects_telemetry_config(self, dataset, tmp_path):
        config = VocalExploreConfig().with_updates(telemetry=TelemetryConfig(enabled=True))
        with pytest.raises(ServingError, match="telemetry"):
            CorpusSessionFactory(dataset, tmp_path, config=config)

    def test_illegal_name_rejected(self, factory):
        with pytest.raises(ServingError, match="illegal session name"):
            factory.session_dir("../escape")

    def test_list_sessions_reflects_disk(self, factory, manager):
        assert factory.list_sessions() == []
        manager.open("bob")
        manager.open("alice")
        assert factory.list_sessions() == ["alice", "bob"]


class TestAdmission:
    def test_open_creates_once_then_reuses(self, manager):
        first = manager.open("alice")
        second = manager.open("alice")
        assert first["session"] == second["session"] == "alice"
        assert manager.stats()["creates"] == 1

    def test_acquire_unknown_without_create_raises(self, manager):
        with pytest.raises(SessionNotFoundError):
            with manager.acquire("ghost", create=False):
                pass

    def test_max_sessions_bounds_total_names(self, factory):
        with SessionManager(factory, max_resident=2, max_sessions=2) as manager:
            manager.open("a")
            manager.open("b")
            with pytest.raises(AdmissionError, match="session limit"):
                manager.open("c")
            # Existing sessions are still admitted, resident or paged out.
            manager.open("a")

    def test_max_sessions_counts_paged_out_sessions(self, factory):
        with SessionManager(factory, max_resident=1, max_sessions=2) as manager:
            manager.open("a")
            manager.open("b")  # evicts a; both still count
            with pytest.raises(AdmissionError):
                manager.open("c")

    def test_illegal_session_name_raises(self, manager):
        with pytest.raises(ServingError, match="illegal"):
            manager.open("no/slashes")


class TestEviction:
    def test_lru_eviction_at_capacity(self, manager):
        for name in ("a", "b", "c"):
            manager.open(name)
        assert not manager.is_resident("a")
        assert manager.resident_sessions() == ["b", "c"]
        stats = manager.stats()
        assert stats["evictions"] == 1
        assert stats["sessions_on_disk"] == 3

    def test_touching_a_session_protects_it_from_eviction(self, manager):
        manager.open("a")
        manager.open("b")
        manager.open("a")  # a is now most recently used
        manager.open("c")  # evicts b, not a
        assert manager.is_resident("a")
        assert not manager.is_resident("b")

    def test_restore_counts_and_preserves_state(self, manager):
        manager.open("a")
        with manager.acquire("a") as vocal:
            result = vocal.explore(batch_size=2)
            for segment in result.segments:
                vocal.add_label(segment.vid, segment.start, segment.end, "a")
            vocal.finish_iteration()
            labels_before = len(vocal.session.storage.labels)
        manager.open("b")
        manager.open("c")  # pages a out
        with manager.acquire("a") as vocal:  # pages a back in
            assert vocal.session.iteration == 1
            assert len(vocal.session.storage.labels) == labels_before
        assert manager.stats()["restores"] == 1

    def test_explicit_evict_unknown_raises(self, manager):
        with pytest.raises(SessionNotFoundError):
            manager.evict("ghost")

    def test_evict_mid_iteration_refused(self, manager):
        manager.open("a")
        with manager.acquire("a") as vocal:
            vocal.explore(batch_size=2)  # leaves the iteration open
        with pytest.raises(ServingError, match="mid-iteration"):
            manager.evict("a")

    def test_evict_pinned_session_refused(self, manager):
        manager.open("a")
        with manager.acquire("a"):
            with pytest.raises(ServingError, match="in-flight"):
                manager.evict("a")

    def test_mid_iteration_sessions_never_auto_evicted(self, factory):
        with SessionManager(factory, max_resident=1) as manager:
            manager.open("a")
            with manager.acquire("a") as vocal:
                vocal.explore(batch_size=2)
            manager.open("b")  # a is mid-iteration: overshoot, don't evict
            assert manager.is_resident("a")
            assert manager.is_resident("b")
            assert manager.stats()["eviction_overshoots"] == 1

    def test_hard_residency_cap_sheds_instead_of_overshooting(self, factory):
        with SessionManager(factory, max_resident=1, max_overshoot=1) as manager:
            for name in ("a", "b"):
                manager.open(name)
                with manager.acquire(name) as vocal:
                    vocal.explore(batch_size=2)
            # Both residents are mid-iteration: the allowance (1) is spent,
            # so the next admission is shed instead of growing residency.
            with pytest.raises(AdmissionError, match="no evictable session"):
                manager.open("c")
            assert manager.stats()["residency_sheds"] == 1
            assert manager.stats()["resident_count"] == 2
            # Closing one iteration frees an eviction candidate; the retried
            # admission now succeeds within the hard cap.
            with manager.acquire("a") as vocal:
                vocal.finish_iteration()
            manager.open("c")
            assert manager.stats()["resident_count"] == 2
            assert not manager.is_resident("a")

    def test_mid_iteration_sessions_are_never_shed_their_own_requests(self, factory):
        with SessionManager(factory, max_resident=1, max_overshoot=0) as manager:
            manager.open("a")
            with manager.acquire("a") as vocal:
                result = vocal.explore(batch_size=2)
            with pytest.raises(AdmissionError):
                manager.open("b")
            # The session holding the open iteration stays fully servable —
            # the request that closes it (unblocking eviction) cannot shed.
            with manager.acquire("a") as vocal:
                vocal.add_label(
                    result.segments[0].vid,
                    result.segments[0].start,
                    result.segments[0].end,
                    factory.dataset.class_names[0],
                )
                vocal.finish_iteration()
            manager.open("b")

    def test_negative_overshoot_rejected(self, factory):
        with pytest.raises(ServingError, match="max_overshoot"):
            SessionManager(factory, max_resident=1, max_overshoot=-1)


class TestLifecycle:
    def test_checkpoint_all_finishes_open_iterations(self, manager):
        manager.open("a")
        with manager.acquire("a") as vocal:
            vocal.explore(batch_size=2)
        assert manager.checkpoint_all() == 1
        with manager.acquire("a") as vocal:
            assert not vocal.session.iteration_open

    def test_close_is_idempotent_and_rejects_further_work(self, factory):
        manager = SessionManager(factory, max_resident=2)
        manager.open("a")
        manager.close()
        manager.close()
        with pytest.raises(ServingError, match="closed"):
            manager.open("a")

    def test_sessions_survive_manager_restart(self, factory):
        with SessionManager(factory, max_resident=2) as manager:
            manager.open("a")
            with manager.acquire("a") as vocal:
                result = vocal.explore(batch_size=2)
                for segment in result.segments:
                    vocal.add_label(segment.vid, segment.start, segment.end, "b")
                vocal.finish_iteration()
                labeled = len(result.segments)
        with SessionManager(factory, max_resident=2) as manager:
            summary = manager.open("a")
            assert summary["iteration"] == 1
            assert summary["labels"] == labeled
            assert manager.stats()["restores"] == 1
