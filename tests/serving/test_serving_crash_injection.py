"""Crash injection across the serving evict/restore cycle (satellite of PR 8).

Reuses the durability suite's :mod:`harness`: a recording pass enumerates
every persistence fault point (write/fsync/rename/dirsync) a serving
scenario crosses — journaled label appends, eviction checkpoints, the
recovery re-checkpoint — then one armed pass per point simulates the server
process dying exactly there.  After every crash a fresh manager (the
"restarted server") must:

* recover **every** session that was ever opened (none lost or orphaned);
* retain **every acknowledged label** — a label whose ``add_labels`` call
  returned before the crash was journaled and fsynced, so no crash point may
  lose it;
* leave each session consistent enough to keep exploring.
"""

from __future__ import annotations

import shutil

import pytest

from harness import enumerate_fault_points, run_crashing_at

from repro.serving import CorpusSessionFactory, LocalSessionAdapter, ScriptedUser, SessionManager

SESSIONS = ("alice", "bob")


class Scenario:
    """One serving run: two sessions, eviction pressure, a restore, labels.

    ``acked`` records every label *after* its ``add_labels`` returned — the
    durable acknowledgements the crash must not lose.  Rebuilt fresh (new
    root) for every armed run.
    """

    def __init__(self, dataset, root) -> None:
        self.dataset = dataset
        self.root = root
        self.factory = CorpusSessionFactory(
            dataset, root, base_seed=11, candidate_features=("r3d", "mvit")
        )
        self.acked: dict[str, list[tuple]] = {name: [] for name in SESSIONS}
        self.opened: list[str] = []

    def __call__(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)
        for records in self.acked.values():
            records.clear()
        self.opened.clear()
        # max_resident=1 forces a checkpoint-evict on every session switch and
        # a restore on every switch back — the paths under test.
        manager = SessionManager(self.factory, max_resident=1)
        users = {
            name: ScriptedUser(name, seed, self.dataset.class_names, cycles=2)
            for seed, name in enumerate(SESSIONS)
        }
        # The manager is deliberately never closed: both the recording pass
        # and every armed pass end like a killed server process — no graceful
        # checkpoint.  Recovery must stand on the journal + snapshots alone.
        for name in SESSIONS:
            manager.open(name)
            self.opened.append(name)
        # Interleave cycles: each explore+label on one session evicts the
        # other, so labels, snapshots, and restores alternate.
        for cycle in range(2):
            for name in SESSIONS:
                user = users[name]
                start = cycle * len(user.steps) // 2
                stop = (cycle + 1) * len(user.steps) // 2
                adapter = LocalSessionAdapter(manager, name)
                for index in range(start, stop):
                    before = len(user.acked_labels)
                    user.run_step(adapter, index)
                    self.acked[name].extend(user.acked_labels[before:])

    def recover_and_check(self) -> None:
        """Restart: a fresh manager over the same root must see everything."""
        with SessionManager(self.factory, max_resident=1) as manager:
            on_disk = self.factory.list_sessions()
            assert sorted(self.opened) == sorted(on_disk), (
                f"restart lost sessions: opened {self.opened}, recovered {on_disk}"
            )
            for name in self.opened:
                with manager.acquire(name) as vocal:
                    stored = {
                        (label.vid, label.start, label.end, label.label)
                        for label in vocal.session.storage.labels.all()
                    }
                    missing = set(self.acked[name]) - stored
                    assert not missing, (
                        f"{name} lost acknowledged labels after crash: {missing}"
                    )
                    # The recovered session keeps working.
                    result = vocal.explore(batch_size=2)
                    assert result.segments
                    vocal.finish_iteration()


@pytest.fixture(scope="module")
def scenario(dataset, tmp_path_factory):
    return Scenario(dataset, tmp_path_factory.mktemp("crash") / "root")


@pytest.fixture(scope="module")
def fault_points(scenario):
    points = enumerate_fault_points(scenario)
    assert len(points) > 10, "scenario crossed suspiciously few fault points"
    return points


def test_clean_run_recovers_everything(scenario, fault_points):
    """Sanity: without a crash the scenario recovers all sessions/labels."""
    scenario()
    scenario.recover_and_check()


def test_eviction_and_restore_cross_snapshot_fault_points(fault_points):
    """The scenario exercises snapshots (eviction) and journal commits."""
    kinds = {point.split(":", 1)[0] for point in fault_points}
    assert {"write", "fsync", "rename"} <= kinds
    assert any("snapshot" in point or "generation" in point for point in fault_points), (
        f"no snapshot fault points crossed: {sorted(set(fault_points))[:20]}"
    )


def test_sampled_crash_points_lose_no_acknowledged_label(scenario, fault_points):
    """Fast default subset: crash at evenly spaced points across the run."""
    stride = max(1, len(fault_points) // 8)
    for index in range(0, len(fault_points), stride):
        outcome = run_crashing_at(scenario, index)
        assert outcome.crashed, f"fault point {index} was not reached on replay"
        scenario.recover_and_check()


@pytest.mark.slow
def test_every_crash_point_loses_no_acknowledged_label(scenario, fault_points):
    """Exhaustive matrix: one armed run per fault point the scenario crosses."""
    for index in range(len(fault_points)):
        outcome = run_crashing_at(scenario, index)
        assert outcome.crashed, f"fault point {index} was not reached on replay"
        scenario.recover_and_check()
