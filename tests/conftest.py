"""Shared fixtures for the test suite.

The fixtures build small synthetic corpora and datasets so individual tests
stay fast; session-scoped fixtures are used for the objects that are expensive
to construct and safe to share (they are treated as read-only by tests).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import VocalExploreConfig
from repro.core.api import VOCALExplore
from repro.core.oracle import OracleUser
from repro.datasets.synthetic import DatasetSpec, generate_dataset
from repro.features.pretrained import build_default_registry
from repro.features.feature_manager import FeatureManager
from repro.models.model_manager import ModelManager
from repro.storage.storage_manager import StorageManager
from repro.video.activity import ActivitySegment, ActivityTrack
from repro.video.corpus import VideoCorpus
from repro.video.decoder import Decoder
from repro.video.sampler import ClipSampler


def make_corpus(num_videos: int = 30, classes=("walk", "eat", "rest"), seed: int = 7) -> VideoCorpus:
    """Build a small corpus with one activity per video, round-robin over classes."""
    corpus = VideoCorpus(classes, seed=seed)
    for i in range(num_videos):
        activity = classes[i % len(classes)]
        corpus.add_video(ActivityTrack(10.0, [ActivitySegment(0.0, 10.0, activity)]))
    return corpus


def make_skewed_corpus(num_videos: int = 60, seed: int = 11) -> VideoCorpus:
    """Corpus skewed 70/20/10 over three classes."""
    classes = ("common", "medium", "rare")
    corpus = VideoCorpus(classes, seed=seed)
    rng = np.random.default_rng(seed)
    for __ in range(num_videos):
        activity = rng.choice(classes, p=[0.7, 0.2, 0.1])
        corpus.add_video(ActivityTrack(10.0, [ActivitySegment(0.0, 10.0, str(activity))]))
    return corpus


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def small_corpus() -> VideoCorpus:
    return make_corpus()


@pytest.fixture
def skewed_corpus() -> VideoCorpus:
    return make_skewed_corpus()


@pytest.fixture
def tiny_dataset():
    """A 4-class dataset small enough for end-to-end session tests."""
    spec = DatasetSpec(
        name="tiny",
        class_names=("a", "b", "c", "d"),
        class_probabilities=(0.55, 0.25, 0.12, 0.08),
        num_train_videos=48,
        num_eval_videos=24,
        video_duration=8.0,
        feature_qualities={"r3d": 0.30, "mvit": 0.28, "clip": 0.15, "clip_pooled": 0.18},
        correct_features=("r3d", "mvit"),
        skewed=True,
    )
    return generate_dataset(spec, seed=3)


@pytest.fixture
def uniform_dataset():
    """A uniform 3-class dataset for acquisition tests."""
    spec = DatasetSpec(
        name="tiny-uniform",
        class_names=("x", "y", "z"),
        class_probabilities=(1 / 3, 1 / 3, 1 / 3),
        num_train_videos=36,
        num_eval_videos=18,
        video_duration=8.0,
        feature_qualities={"r3d": 0.3, "mvit": 0.3, "clip": 0.25, "clip_pooled": 0.25},
        correct_features=("r3d", "mvit"),
        skewed=False,
    )
    return generate_dataset(spec, seed=5)


def build_stack(corpus: VideoCorpus, qualities=None, vocabulary=None, seed: int = 0):
    """Assemble storage + feature manager + model manager for a corpus."""
    qualities = qualities if qualities is not None else {"r3d": 0.4, "mvit": 0.35, "clip": 0.2}
    storage = StorageManager()
    storage.videos.add_records(corpus.records())
    registry = build_default_registry(corpus.latent_dim, qualities, seed=seed)
    feature_manager = FeatureManager(
        registry, Decoder(corpus), storage.videos, storage.features, ClipSampler()
    )
    model_manager = ModelManager(
        feature_manager,
        storage.labels,
        storage.models,
        vocabulary if vocabulary is not None else list(corpus.class_names),
        seed=seed,
    )
    return storage, feature_manager, model_manager


@pytest.fixture
def managed_stack(small_corpus):
    """(storage, feature_manager, model_manager) over the small corpus."""
    return build_stack(small_corpus)


@pytest.fixture
def vocal_tiny(tiny_dataset):
    """A fully wired VOCALExplore instance over the tiny dataset."""
    vocal = VOCALExplore.for_corpus(
        tiny_dataset.train_corpus,
        vocabulary=tiny_dataset.class_names,
        feature_qualities=tiny_dataset.feature_qualities,
        config=VocalExploreConfig(seed=1),
    )
    return vocal


@pytest.fixture
def oracle_tiny(tiny_dataset) -> OracleUser:
    return OracleUser(tiny_dataset.train_corpus, labeling_time=10.0)
