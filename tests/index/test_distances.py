"""Tests for the shared distance kernel in repro.index.distances."""

import numpy as np

from repro.index.distances import pairwise_sq_distances, squared_norms


class TestSquaredNorms:
    def test_matches_linalg(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((40, 7))
        np.testing.assert_allclose(squared_norms(x), np.linalg.norm(x, axis=1) ** 2)

    def test_empty(self):
        assert squared_norms(np.empty((0, 5))).shape == (0,)


class TestPairwiseSqDistances:
    def test_matches_naive_difference_tensor(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((25, 6))
        b = rng.standard_normal((13, 6))
        naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(pairwise_sq_distances(a, b), naive, atol=1e-9)

    def test_precomputed_norms_give_identical_results(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((10, 4))
        b = rng.standard_normal((8, 4))
        plain = pairwise_sq_distances(a, b)
        cached = pairwise_sq_distances(
            a, b, points_sq=squared_norms(a), others_sq=squared_norms(b)
        )
        assert np.array_equal(plain, cached)

    def test_never_negative(self):
        # Identical points cancel to ~0; the kernel must clip at exactly 0.
        x = np.full((6, 3), 1.234567)
        assert (pairwise_sq_distances(x, x) >= 0.0).all()

    def test_single_shared_kernel(self):
        # Every index backend and the ALM's k-means import this exact kernel,
        # and coreset/k-means obtain ANN backends via the index factory
        # (satellite: one distance implementation for the whole system).
        from repro.alm import clustering
        from repro.alm.acquisition import coreset
        from repro.index import base, distances
        from repro.index import exact, ivf_flat, lsh

        for module in (clustering, exact, ivf_flat, lsh):
            assert module.pairwise_sq_distances is distances.pairwise_sq_distances
        assert clustering.build_index is base.build_index
        assert coreset.build_index is base.build_index
