"""Property tests for the repro.index backends.

The contract under test (see repro.index.base):

* ExactIndex matches a naive full scan exactly;
* IVF/LSH recall@k stays above backend-specific floors on clustered data;
* builds and searches are deterministic under a fixed seed;
* incremental adds are immediately visible (IVF re-trains past its threshold);
* save/load round-trips every backend bit-for-bit.
"""

import numpy as np
import pytest

from repro.exceptions import VectorIndexError
from repro.index import (
    ExactIndex,
    IVFFlatIndex,
    LSHIndex,
    VectorIndex,
    build_index,
    index_backends,
)

DIM = 16


def clustered(n, seed=0, num_centers=40, dim=DIM):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_centers, dim)) * 5.0
    vectors = centers[rng.integers(0, num_centers, n)] + rng.standard_normal((n, dim))
    queries = centers[rng.integers(0, num_centers, 50)] + rng.standard_normal((50, dim))
    return vectors, queries


def naive_topk(vectors, queries, k):
    sq = ((queries[:, None, :] - vectors[None, :, :]) ** 2).sum(axis=2)
    order = np.argsort(sq, axis=1, kind="stable")[:, :k]
    return np.take_along_axis(sq, order, axis=1), order


def recall(found, truth):
    return np.mean(
        [len(set(f.tolist()) & set(t.tolist()) - {-1}) / len(t) for f, t in zip(found, truth)]
    )


class TestFactory:
    def test_backends_registered(self):
        assert set(index_backends()) >= {"exact", "ivf-flat", "lsh"}

    def test_aliases(self):
        assert isinstance(build_index("ivf"), IVFFlatIndex)
        assert isinstance(build_index("flat"), ExactIndex)

    def test_unknown_backend_rejected(self):
        with pytest.raises(VectorIndexError):
            build_index("faiss-gpu")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(VectorIndexError):
            IVFFlatIndex(nprobe=0)
        with pytest.raises(VectorIndexError):
            IVFFlatIndex(nlist=0)
        with pytest.raises(VectorIndexError):
            LSHIndex(num_bits=0)
        with pytest.raises(VectorIndexError):
            LSHIndex(num_tables=0)


class TestExactIndex:
    def test_matches_naive_scan_exactly(self):
        vectors, queries = clustered(500, seed=1)
        index = ExactIndex()
        index.build(vectors)
        distances, indices = index.search(queries, 7)
        naive_d, naive_i = naive_topk(vectors, queries, 7)
        assert np.array_equal(indices, naive_i)
        np.testing.assert_allclose(distances, naive_d, atol=1e-9)

    def test_single_vector_query(self):
        vectors, queries = clustered(100, seed=2)
        index = ExactIndex()
        index.build(vectors)
        distances, indices = index.search(queries[0], 3)
        assert distances.shape == (1, 3) and indices.shape == (1, 3)

    def test_k1_tie_breaks_to_first_index(self):
        vectors = np.zeros((5, 3))
        index = ExactIndex()
        index.build(vectors)
        __, indices = index.search(np.zeros(3), 1)
        assert indices[0, 0] == 0

    def test_rows_sorted_by_distance_then_index(self):
        vectors, queries = clustered(200, seed=3)
        index = ExactIndex()
        index.build(vectors)
        distances, indices = index.search(queries, 9)
        for row_d, row_i in zip(distances, indices):
            for a in range(len(row_d) - 1):
                assert (row_d[a], row_i[a]) <= (row_d[a + 1], row_i[a + 1])

    def test_k_larger_than_n_pads(self):
        vectors = np.random.default_rng(0).standard_normal((3, DIM))
        index = ExactIndex()
        index.build(vectors)
        distances, indices = index.search(vectors[:2], 5)
        assert (indices[:, 3:] == -1).all()
        assert np.isinf(distances[:, 3:]).all()

    def test_add_extends_ids(self):
        vectors, __ = clustered(60, seed=4)
        index = ExactIndex()
        index.build(vectors[:40])
        index.add(vectors[40:])
        assert len(index) == 60
        __, indices = index.search(vectors[55], 1)
        assert indices[0, 0] == 55

    def test_invalid_k_rejected(self):
        index = ExactIndex()
        index.build(np.zeros((2, 2)))
        with pytest.raises(VectorIndexError):
            index.search(np.zeros(2), 0)

    def test_dim_mismatch_rejected(self):
        index = ExactIndex()
        index.build(np.zeros((2, 4)))
        with pytest.raises(VectorIndexError):
            index.search(np.zeros(3), 1)
        with pytest.raises(VectorIndexError):
            index.add(np.zeros((1, 3)))


class TestIVFFlatIndex:
    def test_recall_floor_on_clustered_data(self):
        vectors, queries = clustered(4000, seed=5)
        exact = ExactIndex()
        exact.build(vectors)
        truth = exact.search(queries, 10)[1]
        index = IVFFlatIndex(seed=0)
        index.build(vectors)
        found = index.search(queries, 10)[1]
        assert recall(found, truth) >= 0.9

    def test_deterministic_across_rebuilds(self):
        vectors, queries = clustered(1500, seed=6)
        first = IVFFlatIndex(seed=3)
        first.build(vectors)
        second = IVFFlatIndex(seed=3)
        second.build(vectors)
        d1, i1 = first.search(queries, 8)
        d2, i2 = second.search(queries, 8)
        assert np.array_equal(i1, i2)
        assert np.array_equal(d1, d2)

    def test_incremental_add_visible_immediately(self):
        vectors, __ = clustered(1000, seed=7)
        index = IVFFlatIndex(seed=0, retrain_factor=10.0)  # no retrain
        index.build(vectors[:900])
        index.add(vectors[900:])
        assert len(index) == 1000
        # Fresh vectors live in the exactly-scanned side buffer: querying one
        # of them must return it first.
        __, indices = index.search(vectors[950], 1)
        assert indices[0, 0] == 950

    def test_add_past_threshold_retrains(self):
        vectors, queries = clustered(1200, seed=8)
        index = IVFFlatIndex(seed=0, retrain_factor=0.25)
        index.build(vectors[:800])
        index.add(vectors[800:])  # 400 > 0.25 * 800 -> retrain
        assert index._extra.shape[0] == 0  # side buffer folded in
        assert len(index) == 1200
        exact = ExactIndex()
        exact.build(vectors)
        truth = exact.search(queries, 10)[1]
        found = index.search(queries, 10)[1]
        assert recall(found, truth) >= 0.9

    def test_build_after_adds_only(self):
        vectors, __ = clustered(300, seed=9)
        index = IVFFlatIndex(seed=0)
        index.add(vectors)  # never built explicitly
        assert len(index) == 300
        __, indices = index.search(vectors[17], 1)
        assert indices[0, 0] == 17

    def test_nprobe_full_scan_matches_exact(self):
        vectors, queries = clustered(400, seed=10)
        index = IVFFlatIndex(nlist=10, nprobe=10, seed=0)
        index.build(vectors)
        exact = ExactIndex()
        exact.build(vectors)
        assert np.array_equal(index.search(queries, 5)[1], exact.search(queries, 5)[1])


class TestLSHIndex:
    def test_recall_floor_on_clustered_data(self):
        vectors, queries = clustered(3000, seed=11)
        exact = ExactIndex()
        exact.build(vectors)
        truth = exact.search(queries, 10)[1]
        index = LSHIndex(seed=0)
        index.build(vectors)
        found = index.search(queries, 10)[1]
        assert recall(found, truth) >= 0.5

    def test_deterministic_across_rebuilds(self):
        vectors, queries = clustered(800, seed=12)
        results = []
        for __ in range(2):
            index = LSHIndex(seed=9)
            index.build(vectors)
            results.append(index.search(queries, 6))
        assert np.array_equal(results[0][1], results[1][1])
        assert np.array_equal(results[0][0], results[1][0])

    def test_returned_distances_are_exact(self):
        vectors, queries = clustered(500, seed=13)
        index = LSHIndex(seed=0)
        index.build(vectors)
        distances, indices = index.search(queries, 5)
        for q in range(queries.shape[0]):
            for d, i in zip(distances[q], indices[q]):
                if i < 0:
                    continue
                true_sq = float(((queries[q] - vectors[i]) ** 2).sum())
                assert d == pytest.approx(true_sq, abs=1e-9)

    def test_add_visible_after_resort(self):
        vectors, __ = clustered(600, seed=14)
        index = LSHIndex(seed=0)
        index.build(vectors[:500])
        index.add(vectors[500:])
        assert len(index) == 600
        __, indices = index.search(vectors[560], 1)
        assert indices[0, 0] == 560  # its own bucket always contains it

    def test_signature_width_regrows_with_pool(self):
        # Built tiny (few signature bits), then grown 20x: the table must
        # re-hash under wider planes instead of degenerating to a full scan.
        vectors, __ = clustered(4000, seed=17)
        index = LSHIndex(seed=0, num_bits=12)
        index.build(vectors[:100])
        narrow = index._planes.shape[1]
        index.add(vectors[100:])
        assert index._planes.shape[1] > narrow
        assert index._planes.shape[1] == index._capped_bits(4000)
        __, indices = index.search(vectors[2500], 1)
        assert indices[0, 0] == 2500


class TestSaveLoad:
    @pytest.mark.parametrize("backend", ["exact", "ivf-flat", "lsh"])
    def test_roundtrip_bitwise(self, backend, tmp_path):
        vectors, queries = clustered(700, seed=15)
        index = build_index(backend, seed=4)
        index.build(vectors)
        path = tmp_path / "index.npz"
        index.save(path)
        restored = VectorIndex.load(path)
        assert type(restored) is type(index)
        assert len(restored) == len(index)
        d0, i0 = index.search(queries, 8)
        d1, i1 = restored.search(queries, 8)
        assert np.array_equal(i0, i1)
        assert np.array_equal(d0, d1)

    @pytest.mark.parametrize("backend", ["exact", "ivf-flat", "lsh"])
    def test_empty_roundtrip_keeps_dim_guard(self, backend, tmp_path):
        index = build_index(backend)
        index.build(np.empty((0, 5)))
        path = tmp_path / "index.npz"
        index.save(path)
        restored = VectorIndex.load(path)
        assert restored.dim == 5
        with pytest.raises(VectorIndexError):
            restored.add(np.zeros((2, 7)))

    def test_load_through_concrete_class_checks_backend(self, tmp_path):
        index = ExactIndex()
        index.build(np.zeros((4, 3)))
        path = tmp_path / "index.npz"
        index.save(path)
        assert isinstance(ExactIndex.load(path), ExactIndex)
        with pytest.raises(VectorIndexError):
            LSHIndex.load(path)

    def test_ivf_roundtrip_preserves_side_buffer(self, tmp_path):
        vectors, queries = clustered(500, seed=16)
        index = IVFFlatIndex(seed=0, retrain_factor=10.0)
        index.build(vectors[:450])
        index.add(vectors[450:])
        path = tmp_path / "index.npz"
        index.save(path)
        restored = VectorIndex.load(path)
        assert len(restored) == 500
        assert np.array_equal(index.search(queries, 5)[1], restored.search(queries, 5)[1])
