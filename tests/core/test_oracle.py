"""Tests for the oracle users."""

import pytest

from repro.core.oracle import NoisyOracleUser, OracleUser
from repro.types import ClipSpec

from tests.conftest import make_corpus


@pytest.fixture
def corpus():
    return make_corpus(num_videos=12)


class TestOracleUser:
    def test_labels_match_ground_truth(self, corpus):
        oracle = OracleUser(corpus)
        for video in corpus.videos():
            clip = ClipSpec(video.vid, 0.0, 1.0)
            assert oracle.label_for(clip) == corpus.dominant_label(clip)

    def test_label_clips_returns_parallel_labels(self, corpus):
        oracle = OracleUser(corpus)
        clips = [ClipSpec(v.vid, 0.0, 1.0) for v in corpus.videos()[:4]]
        labels = oracle.label_clips(clips)
        assert len(labels) == 4
        for clip, label in zip(clips, labels):
            assert label.vid == clip.vid
            assert label.start == clip.start

    def test_default_label_used_when_no_activity(self, corpus):
        oracle = OracleUser(corpus, default_label="rest")
        # The corpus covers every second with an activity, so fabricate a
        # track-free scenario by overriding the lookup to an empty interval via
        # a clip outside any segment is not possible here; instead check the
        # configured default is stored.
        assert oracle.default_label == "rest"

    def test_default_label_falls_back_to_first_class(self, corpus):
        assert OracleUser(corpus).default_label == corpus.class_names[0]

    def test_labeling_time_stored(self, corpus):
        assert OracleUser(corpus, labeling_time=7.5).labeling_time == 7.5


class TestNoisyOracle:
    def test_zero_noise_matches_clean_oracle(self, corpus):
        clean = OracleUser(corpus)
        noisy = NoisyOracleUser(corpus, noise_rate=0.0, seed=1)
        clips = [ClipSpec(v.vid, 0.0, 1.0) for v in corpus.videos()]
        assert [noisy.label_for(c) for c in clips] == [clean.label_for(c) for c in clips]

    def test_full_noise_always_wrong(self, corpus):
        noisy = NoisyOracleUser(corpus, noise_rate=1.0, seed=1)
        for video in corpus.videos():
            clip = ClipSpec(video.vid, 0.0, 1.0)
            assert noisy.label_for(clip) != corpus.dominant_label(clip)

    def test_noisy_labels_stay_in_vocabulary(self, corpus):
        noisy = NoisyOracleUser(corpus, noise_rate=0.5, seed=2)
        for video in corpus.videos():
            assert noisy.label_for(ClipSpec(video.vid, 0.0, 1.0)) in corpus.class_names

    def test_intermediate_noise_rate_flips_some_labels(self, corpus):
        noisy = NoisyOracleUser(corpus, noise_rate=0.5, seed=3)
        clean = OracleUser(corpus)
        clips = [ClipSpec(v.vid, s, s + 1.0) for v in corpus.videos() for s in (0.0, 3.0, 6.0)]
        flips = sum(
            1 for clip in clips if noisy.label_for(clip) != clean.label_for(clip)
        )
        assert 0 < flips < len(clips)

    def test_invalid_noise_rate_rejected(self, corpus):
        with pytest.raises(ValueError):
            NoisyOracleUser(corpus, noise_rate=1.5)
