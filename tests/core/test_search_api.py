"""Tests for the similarity-search workload: session/VOCALExplore.search + CLI."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.config import IndexConfig, VocalExploreConfig
from repro.core.api import VOCALExplore
from repro.core.session import SearchHit
from repro.exceptions import ReproError
from repro.scheduler.tasks import TaskKind
from repro.types import ClipSpec


@pytest.fixture
def vocal(tiny_dataset):
    return VOCALExplore.for_corpus(
        tiny_dataset.train_corpus,
        vocabulary=tiny_dataset.class_names,
        feature_qualities=tiny_dataset.feature_qualities,
        config=VocalExploreConfig(seed=1),
    )


class TestSessionSearch:
    def test_clip_query_returns_k_hits(self, vocal):
        hits = vocal.search((0, 0.0, 1.0), k=5)
        assert len(hits) == 5
        assert all(isinstance(hit, SearchHit) for hit in hits)
        distances = [hit.distance for hit in hits]
        assert distances == sorted(distances)

    def test_clipspec_query_accepted(self, vocal):
        hits = vocal.search(ClipSpec(0, 0.0, 1.0), k=3)
        assert len(hits) == 3

    def test_query_clip_excluded_from_results(self, vocal):
        vocal.search((0, 0.0, 1.0), k=3)  # extracts the query's window
        store = vocal.session.storage.features
        feature = vocal.current_feature()
        resolved = store.resolve_clips(feature, [ClipSpec(0, 0.0, 1.0)])[0]
        hits = vocal.search((0, 0.0, 1.0), k=5)
        assert resolved not in [hit.clip for hit in hits]

    def test_vector_query(self, vocal):
        vocal.search((0, 0.0, 1.0), k=1)  # populate the pool
        feature = vocal.current_feature()
        clips, vectors = vocal.session.storage.features.all_vectors(feature)
        hits = vocal.search(vectors[4], k=1)
        # A stored vector's own clip is its nearest neighbour (not excluded
        # for raw-vector queries).
        assert hits[0].clip == clips[4]
        assert hits[0].distance == pytest.approx(0.0, abs=1e-9)

    def test_latency_charged_through_scheduler(self, vocal):
        vocal.search((0, 0.0, 1.0), k=4)
        scheduler = vocal.session.scheduler
        kinds = {task.kind for task in scheduler.completed_tasks()}
        assert TaskKind.VECTOR_SEARCH in kinds
        assert TaskKind.FEATURE_EXTRACTION in kinds  # pool + query extraction
        assert scheduler.cumulative_visible_latency() > 0.0

    def test_search_before_explore_then_explore_still_works(self, vocal):
        vocal.search((0, 0.0, 1.0), k=2)
        result = vocal.explore(batch_size=2, clip_duration=1.0)
        assert len(result.segments) == 2

    def test_search_after_finished_iteration_gets_own_record(self, vocal, tiny_dataset):
        from repro.core.oracle import OracleUser

        user = OracleUser(tiny_dataset.train_corpus, labeling_time=10.0)
        result = vocal.explore(batch_size=2, clip_duration=1.0)
        for segment in result.segments:
            vocal.add_label(segment.vid, segment.start, segment.end, user.label_for(segment.clip))
        summary = vocal.finish_iteration()
        finalised = vocal.session.scheduler.iteration_records()[-1]
        vocal.search((0, 0.0, 1.0), k=2)
        vocal.watch(0, 0.0, 2.0)
        # The finalised record must not absorb search/watch cost.
        assert finalised.visible_latency == pytest.approx(summary.visible_latency)
        assert "vector_search" not in finalised.visible_by_kind
        assert vocal.session.scheduler.iteration_records()[-1] is not finalised

    def test_three_element_list_is_a_vector_not_a_clip(self, tiny_dataset):
        # A 3-d feature space must not reinterpret [a, b, c] as (vid, start, end).
        config = VocalExploreConfig(seed=1)
        vocal = VOCALExplore.for_corpus(
            tiny_dataset.train_corpus,
            vocabulary=tiny_dataset.class_names,
            feature_qualities=tiny_dataset.feature_qualities,
            config=config,
        )
        vocal.search((0, 0.0, 1.0), k=1)  # populate pool (dim != 3 here)
        with pytest.raises(ReproError):
            # Treated as a raw 3-d vector: dimensionality mismatch, not a
            # silent clip lookup on video 0.
            vocal.search([0.0, 0.2, 0.9], k=1)

    def test_invalid_k_rejected(self, vocal):
        with pytest.raises(ReproError):
            vocal.search((0, 0.0, 1.0), k=0)

    def test_bad_vector_shape_rejected(self, vocal):
        with pytest.raises(ReproError):
            vocal.search(np.zeros((2, 2)), k=1)

    def test_ann_backend_selectable_via_config(self, tiny_dataset):
        config = VocalExploreConfig(seed=1).with_updates(
            index=IndexConfig(backend="ivf-flat", nprobe=4)
        )
        vocal = VOCALExplore.for_corpus(
            tiny_dataset.train_corpus,
            vocabulary=tiny_dataset.class_names,
            feature_qualities=tiny_dataset.feature_qualities,
            config=config,
        )
        hits = vocal.search((0, 0.0, 1.0), k=5)
        assert len(hits) == 5
        feature = vocal.current_feature()
        assert vocal.session.storage.features.index_backend(feature) == "ivf-flat"

    def test_exact_and_ann_agree_on_top_hit(self, tiny_dataset):
        results = {}
        for backend in ("exact", "ivf-flat"):
            config = VocalExploreConfig(seed=1).with_updates(
                index=IndexConfig(backend=backend)
            )
            vocal = VOCALExplore.for_corpus(
                tiny_dataset.train_corpus,
                vocabulary=tiny_dataset.class_names,
                feature_qualities=tiny_dataset.feature_qualities,
                config=config,
            )
            results[backend] = vocal.search((0, 0.0, 1.0), k=10)
        exact_clips = {hit.clip for hit in results["exact"]}
        ann_clips = {hit.clip for hit in results["ivf-flat"]}
        assert len(exact_clips & ann_clips) >= 5  # decent agreement


class TestSearchCLI:
    def test_cli_search_end_to_end(self, capsys):
        code = cli_main(
            ["search", "--dataset", "deer", "--vid", "0", "--start", "0", "--end", "1",
             "-k", "3", "--backend", "exact", "--pool-videos", "10"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "rank" in output
        assert "visible latency charged" in output
        latency = float(output.rsplit("visible latency charged:", 1)[1].split("s")[0])
        assert latency > 0.0

    def test_cli_search_ann_backend(self, capsys):
        code = cli_main(
            ["search", "--dataset", "deer", "-k", "3", "--backend", "lsh",
             "--pool-videos", "10"]
        )
        assert code == 0
        assert "lsh index" in capsys.readouterr().out
