"""Tests for the exploration session and the VOCALExplore public API."""

import pytest

from repro.config import SchedulerConfig, VocalExploreConfig
from repro.core.api import VOCALExplore
from repro.core.oracle import OracleUser
from repro.exceptions import ReproError
from repro.scheduler.tasks import TaskKind


def run_iterations(vocal, oracle, steps, batch_size=5, label=None):
    results = []
    for __ in range(steps):
        result = vocal.explore(batch_size=batch_size, clip_duration=1.0, label=label)
        for segment in result.segments:
            vocal.add_label(
                segment.vid, segment.start, segment.end, oracle.label_for(segment.clip)
            )
        vocal.finish_iteration()
        results.append(result)
    return results


class TestExploreBasics:
    def test_explore_returns_requested_batch(self, vocal_tiny):
        result = vocal_tiny.explore(batch_size=4, clip_duration=1.0)
        assert len(result.segments) == 4
        assert result.iteration == 1
        assert result.acquisition == "random"
        for segment in result.segments:
            assert segment.end - segment.start == pytest.approx(1.0)

    def test_no_predictions_before_minimum_labels(self, vocal_tiny):
        result = vocal_tiny.explore(batch_size=3, clip_duration=1.0)
        assert all(segment.prediction is None for segment in result.segments)

    def test_predictions_appear_after_labeling(self, vocal_tiny, oracle_tiny):
        run_iterations(vocal_tiny, oracle_tiny, steps=3)
        result = vocal_tiny.explore(batch_size=3, clip_duration=1.0)
        assert any(segment.prediction is not None for segment in result.segments)
        for segment in result.segments:
            if segment.prediction is not None:
                assert set(segment.prediction.probabilities) == {"a", "b", "c", "d"}
                assert segment.predicted_label in {"a", "b", "c", "d"}

    def test_explore_defaults_from_config(self, vocal_tiny):
        result = vocal_tiny.explore()
        assert len(result.segments) == 5

    def test_finish_without_open_iteration_raises(self, vocal_tiny):
        with pytest.raises(ReproError):
            vocal_tiny.finish_iteration()

    def test_explore_auto_finishes_previous_iteration(self, vocal_tiny, oracle_tiny):
        first = vocal_tiny.explore(batch_size=2, clip_duration=1.0)
        for segment in first.segments:
            vocal_tiny.add_label(
                segment.vid, segment.start, segment.end, oracle_tiny.label_for(segment.clip)
            )
        second = vocal_tiny.explore(batch_size=2, clip_duration=1.0)
        assert second.iteration == 2
        assert len(vocal_tiny.summaries()) == 1

    def test_targeted_explore_accepts_label(self, vocal_tiny, oracle_tiny):
        run_iterations(vocal_tiny, oracle_tiny, steps=3)
        result = vocal_tiny.explore(batch_size=3, clip_duration=1.0, label="a")
        assert len(result.segments) == 3


class TestLabelsAndWatch:
    def test_add_label_persists(self, vocal_tiny):
        vocal_tiny.add_label(0, 0.0, 1.0, "a")
        assert len(vocal_tiny.session.storage.labels) == 1

    def test_add_video_registers_metadata(self, vocal_tiny):
        before = len(vocal_tiny.session.storage.videos)
        vid = vocal_tiny.add_video("extra.mp4", duration=12.0)
        assert len(vocal_tiny.session.storage.videos) == before + 1
        assert vocal_tiny.session.storage.videos.get(vid).path == "extra.mp4"

    def test_watch_returns_consecutive_segments(self, vocal_tiny, oracle_tiny):
        run_iterations(vocal_tiny, oracle_tiny, steps=2)
        vid = vocal_tiny.session.storage.videos.vids()[0]
        segments = vocal_tiny.watch(vid, 0.0, 3.0)
        assert len(segments) == 3
        assert segments[0].start == 0.0
        assert segments[-1].end == pytest.approx(3.0)
        for before, after in zip(segments, segments[1:]):
            assert after.start == pytest.approx(before.end)

    def test_watch_before_any_model_gives_no_predictions(self, vocal_tiny):
        vid = vocal_tiny.session.storage.videos.vids()[0]
        segments = vocal_tiny.watch(vid, 0.0, 2.0)
        assert all(segment.prediction is None for segment in segments)


class TestIterationSummaries:
    def test_summary_records_progress(self, vocal_tiny, oracle_tiny):
        run_iterations(vocal_tiny, oracle_tiny, steps=4, batch_size=4)
        summaries = vocal_tiny.summaries()
        assert len(summaries) == 4
        assert summaries[-1].num_labels_total == 16
        assert summaries[-1].smax >= 0.25
        assert all(summary.visible_latency >= 0.0 for summary in summaries)
        assert summaries[0].candidate_features

    def test_cumulative_latency_is_monotonic(self, vocal_tiny, oracle_tiny):
        latencies = []
        for __ in range(3):
            run_iterations(vocal_tiny, oracle_tiny, steps=1)
            latencies.append(vocal_tiny.cumulative_visible_latency())
        assert latencies == sorted(latencies)

    def test_training_happens_in_background(self, vocal_tiny, oracle_tiny):
        run_iterations(vocal_tiny, oracle_tiny, steps=3)
        kinds = {record.kind for record in vocal_tiny.session.scheduler.completed_tasks()}
        assert TaskKind.MODEL_TRAINING in kinds
        assert vocal_tiny.session.models.has_model(vocal_tiny.current_feature())


class TestSchedulingStrategies:
    def build(self, dataset, strategy, seed=1):
        config = VocalExploreConfig(
            scheduler=SchedulerConfig(strategy=strategy, user_labeling_time=10.0), seed=seed
        )
        return VOCALExplore.for_corpus(
            dataset.train_corpus,
            vocabulary=dataset.class_names,
            feature_qualities=dataset.feature_qualities,
            config=config,
        )

    def test_serial_has_higher_latency_than_full(self, tiny_dataset):
        oracle = OracleUser(tiny_dataset.train_corpus)
        serial = self.build(tiny_dataset, "serial")
        full = self.build(tiny_dataset, "ve-full")
        run_iterations(serial, oracle, steps=4)
        run_iterations(full, oracle, steps=4)
        assert serial.cumulative_visible_latency() > full.cumulative_visible_latency()

    def test_ve_full_schedules_eager_extraction(self, tiny_dataset):
        oracle = OracleUser(tiny_dataset.train_corpus)
        full = self.build(tiny_dataset, "ve-full")
        run_iterations(full, oracle, steps=3)
        kinds = {record.kind for record in full.session.scheduler.completed_tasks()}
        assert TaskKind.EAGER_FEATURE_EXTRACTION in kinds

    def test_serial_never_schedules_eager_extraction(self, tiny_dataset):
        oracle = OracleUser(tiny_dataset.train_corpus)
        serial = self.build(tiny_dataset, "serial")
        run_iterations(serial, oracle, steps=3)
        kinds = {record.kind for record in serial.session.scheduler.completed_tasks()}
        assert TaskKind.EAGER_FEATURE_EXTRACTION not in kinds

    def test_eager_video_limit_respected(self, tiny_dataset):
        oracle = OracleUser(tiny_dataset.train_corpus)
        config = VocalExploreConfig(
            scheduler=SchedulerConfig(strategy="ve-full", eager_video_limit=5), seed=1
        )
        vocal = VOCALExplore.for_corpus(
            tiny_dataset.train_corpus,
            vocabulary=tiny_dataset.class_names,
            feature_qualities=tiny_dataset.feature_qualities,
            config=config,
        )
        run_iterations(vocal, oracle, steps=3)
        assert vocal.session._eager_videos_done <= 5

    def test_forced_feature_is_used(self, tiny_dataset):
        oracle = OracleUser(tiny_dataset.train_corpus)
        vocal = self.build(tiny_dataset, "ve-full")
        vocal.session.force_feature = "clip"
        results = run_iterations(vocal, oracle, steps=2)
        assert all(result.feature_name == "clip" for result in results)

    def test_forced_acquisition_random_never_switches(self, tiny_dataset):
        oracle = OracleUser(tiny_dataset.train_corpus)
        vocal = self.build(tiny_dataset, "ve-full")
        vocal.session.force_acquisition = "random"
        results = run_iterations(vocal, oracle, steps=6)
        assert all(result.acquisition == "random" for result in results)
