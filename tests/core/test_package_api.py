"""Tests for the package's public surface and exception hierarchy."""

import pytest

import repro
from repro import exceptions


class TestPackageExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_key_classes_importable_from_top_level(self):
        assert repro.VOCALExplore is not None
        assert repro.VocalExploreConfig is not None
        assert repro.ClipSpec is not None

    def test_subpackage_exports_resolve(self):
        import repro.alm as alm
        import repro.datasets as datasets
        import repro.experiments as experiments
        import repro.features as features
        import repro.models as models
        import repro.scheduler as scheduler
        import repro.storage as storage
        import repro.video as video

        for module in (alm, datasets, experiments, features, models, scheduler, storage, video):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__} missing export {name}"


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        error_classes = [
            getattr(exceptions, name)
            for name in dir(exceptions)
            if isinstance(getattr(exceptions, name), type)
            and issubclass(getattr(exceptions, name), Exception)
        ]
        for error_class in error_classes:
            if error_class is not exceptions.ReproError:
                assert issubclass(error_class, exceptions.ReproError)

    def test_subsystem_errors_are_distinguishable(self):
        assert issubclass(exceptions.SchemaError, exceptions.StorageError)
        assert issubclass(exceptions.UnknownVideoError, exceptions.VideoError)
        assert issubclass(exceptions.MissingFeatureError, exceptions.FeatureError)
        assert issubclass(exceptions.NotFittedError, exceptions.ModelError)
        assert issubclass(exceptions.AcquisitionError, exceptions.ALMError)
        assert issubclass(exceptions.TaskError, exceptions.SchedulerError)
        assert not issubclass(exceptions.StorageError, exceptions.ModelError)

    def test_catching_base_error_catches_subsystem_errors(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.InsufficientLabelsError("not enough labels")
