"""Tests for configuration objects and core value types."""

import numpy as np
import pytest

from repro.config import (
    ALMConfig,
    ExploreConfig,
    FeatureSelectionConfig,
    ModelConfig,
    SchedulerConfig,
    VocalExploreConfig,
)
from repro.exceptions import InvalidClipError
from repro.types import ClipSpec, FeatureVector, Label, Prediction, VideoRecord, VideoSegment


class TestConfigValidation:
    def test_defaults_match_paper(self):
        config = VocalExploreConfig()
        assert config.alm.skew_p_value == 0.001
        assert config.alm.active_acquisition == "cluster-margin"
        assert config.feature_selection.smoothing_span == 5
        assert config.feature_selection.slope_window == 5
        assert config.feature_selection.horizon == 50
        assert config.feature_selection.warmup_iterations == 10
        assert config.scheduler.user_labeling_time == 10.0
        assert config.scheduler.eager_batch_size == 10
        assert config.explore.batch_size == 5
        assert config.explore.clip_duration == 1.0

    def test_invalid_alm_settings(self):
        with pytest.raises(ValueError):
            ALMConfig(skew_test="chi-square")
        with pytest.raises(ValueError):
            ALMConfig(active_acquisition="dqn")
        with pytest.raises(ValueError):
            ALMConfig(skew_p_value=0.0)
        with pytest.raises(ValueError):
            ALMConfig(frequency_multiplier=0.5)

    def test_invalid_feature_selection_settings(self):
        with pytest.raises(ValueError):
            FeatureSelectionConfig(smoothing_span=0)
        with pytest.raises(ValueError):
            FeatureSelectionConfig(cv_folds=1)
        with pytest.raises(ValueError):
            FeatureSelectionConfig(horizon=0)

    def test_invalid_scheduler_settings(self):
        with pytest.raises(ValueError):
            SchedulerConfig(strategy="eager-only")
        with pytest.raises(ValueError):
            SchedulerConfig(user_labeling_time=-1.0)
        with pytest.raises(ValueError):
            SchedulerConfig(eager_batch_size=0)

    def test_engine_settings(self):
        config = SchedulerConfig(engine="threads", num_workers=2, time_scale=0.01)
        assert config.engine == "threads"
        assert config.num_workers == 2
        assert SchedulerConfig().engine == "simulated"
        with pytest.raises(ValueError):
            SchedulerConfig(engine="greenlets")
        with pytest.raises(ValueError):
            SchedulerConfig(num_workers=0)
        with pytest.raises(ValueError):
            SchedulerConfig(time_scale=0.0)

    def test_invalid_model_and_explore_settings(self):
        with pytest.raises(ValueError):
            ModelConfig(l2_regularization=-1.0)
        with pytest.raises(ValueError):
            ExploreConfig(batch_size=0)
        with pytest.raises(ValueError):
            ExploreConfig(clip_duration=0.0)

    def test_with_updates_replaces_sections(self):
        config = VocalExploreConfig()
        updated = config.with_updates(scheduler=SchedulerConfig(strategy="serial"), seed=9)
        assert updated.scheduler.strategy == "serial"
        assert updated.seed == 9
        # Original is unchanged (frozen dataclass semantics).
        assert config.scheduler.strategy == "ve-full"

    def test_with_updates_unknown_section_rejected(self):
        with pytest.raises(ValueError):
            VocalExploreConfig().with_updates(gpu="a100")


class TestVideoRecordAndClip:
    def test_video_record_frame_count(self):
        record = VideoRecord(vid=0, path="a.mp4", duration=2.0, fps=30.0)
        assert record.frame_count == 60

    def test_video_record_validation(self):
        with pytest.raises(InvalidClipError):
            VideoRecord(vid=0, path="a.mp4", duration=0.0)
        with pytest.raises(InvalidClipError):
            VideoRecord(vid=0, path="a.mp4", duration=1.0, fps=0.0)

    def test_clip_validation(self):
        with pytest.raises(InvalidClipError):
            ClipSpec(0, 2.0, 2.0)
        with pytest.raises(InvalidClipError):
            ClipSpec(0, -1.0, 2.0)

    def test_clip_properties(self):
        clip = ClipSpec(3, 2.0, 5.0)
        assert clip.duration == 3.0
        assert clip.midpoint == 3.5

    def test_clip_overlap(self):
        assert ClipSpec(0, 0.0, 2.0).overlaps(ClipSpec(0, 1.0, 3.0))
        assert not ClipSpec(0, 0.0, 2.0).overlaps(ClipSpec(0, 2.0, 3.0))
        assert not ClipSpec(0, 0.0, 2.0).overlaps(ClipSpec(1, 1.0, 3.0))

    def test_clip_ordering(self):
        clips = sorted([ClipSpec(1, 0.0, 1.0), ClipSpec(0, 5.0, 6.0), ClipSpec(0, 1.0, 2.0)])
        assert clips[0].vid == 0 and clips[0].start == 1.0
        assert clips[-1].vid == 1


class TestLabelFeaturePrediction:
    def test_label_clip(self):
        label = Label(2, 1.0, 2.0, "walk")
        assert label.clip == ClipSpec(2, 1.0, 2.0)

    def test_feature_vector_validation_and_dim(self):
        feature = FeatureVector("r3d", 0, 0.0, 1.0, np.zeros(16))
        assert feature.dim == 16
        assert feature.clip.vid == 0
        with pytest.raises(ValueError):
            FeatureVector("r3d", 0, 0.0, 1.0, np.zeros((2, 2)))

    def test_prediction_top_label_and_margin(self):
        prediction = Prediction(0, 0.0, 1.0, {"a": 0.7, "b": 0.2, "c": 0.1})
        assert prediction.top_label == "a"
        assert prediction.top_probability == pytest.approx(0.7)
        assert prediction.margin() == pytest.approx(0.5)

    def test_prediction_margin_single_class(self):
        assert Prediction(0, 0.0, 1.0, {"a": 1.0}).margin() == 1.0

    def test_video_segment_accessors(self):
        prediction = Prediction(4, 1.0, 2.0, {"a": 0.9, "b": 0.1})
        segment = VideoSegment(clip=ClipSpec(4, 1.0, 2.0), prediction=prediction)
        assert segment.vid == 4
        assert segment.start == 1.0
        assert segment.end == 2.0
        assert segment.predicted_label == "a"
        assert VideoSegment(clip=ClipSpec(4, 1.0, 2.0)).predicted_label is None
