"""Tests for the hyperparameter-sensitivity sweep and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.sensitivity import DEFAULT_GRID, run_sensitivity_sweep


class TestSensitivitySweep:
    def test_sweep_covers_full_grid(self, tiny_dataset):
        grid = {"smoothing_span": (3, 5), "slope_window": (5,), "horizon": (20,)}
        result = run_sensitivity_sweep(tiny_dataset, grid=grid, num_steps=6, seeds=(0,))
        assert len(result.cells) == 2
        for cell in result.cells:
            assert 0.0 <= cell.correctness <= 1.0
            assert 0.0 <= cell.converged_fraction <= 1.0
            assert cell.trials == 1
        low, high = result.correctness_range()
        assert 0.0 <= low <= high <= 1.0
        assert "sensitivity" in result.format().lower()

    def test_default_grid_matches_paper(self):
        assert DEFAULT_GRID["smoothing_span"] == (3, 5, 7)
        assert DEFAULT_GRID["slope_window"] == (5, 7)
        assert DEFAULT_GRID["horizon"] == (20, 50)

    def test_rows_contain_hyperparameters(self, tiny_dataset):
        grid = {"smoothing_span": (5,), "slope_window": (5,), "horizon": (20,)}
        result = run_sensitivity_sweep(tiny_dataset, grid=grid, num_steps=5, seeds=(0,))
        row = result.rows()[0]
        assert row["w"] == 5 and row["C"] == 5 and row["T"] == 20


class TestCLIParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"
        assert args.scale == "scaled"

    def test_explore_arguments(self):
        args = build_parser().parse_args(
            ["explore", "--dataset", "k20-skew", "--steps", "7", "--strategy", "serial",
             "--acquisition", "random", "--feature", "mvit"]
        )
        assert args.dataset == "k20-skew"
        assert args.steps == 7
        assert args.strategy == "serial"
        assert args.acquisition == "random"
        assert args.feature == "mvit"

    def test_experiment_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--name", "fig99"])

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--dataset", "imagenet"])


class TestCLIExecution:
    def test_datasets_command_prints_table(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "k20-skew" in output

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "--name", "table3"]) == 0
        output = capsys.readouterr().out
        assert "r3d" in output and "throughput" in output

    def test_explore_command_runs_small_session(self, capsys):
        code = main(
            ["explore", "--dataset", "bears", "--steps", "2", "--batch-size", "3",
             "--feature", "clip", "--acquisition", "random", "--seed", "1"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "cumulative visible latency" in output
        assert "Exploration of bears" in output
