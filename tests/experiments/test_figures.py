"""Smoke and shape tests for the per-figure experiment runners.

These run each figure's experiment at a very small scale to verify the data
shapes, the reported rows, and the qualitative relationships the benchmarks
assert at a larger scale.
"""

import pytest

from repro.experiments.acquisition import ACQUISITION_METHODS, run_acquisition_comparison
from repro.experiments.end_to_end import run_end_to_end
from repro.experiments.feature_quality import run_feature_quality
from repro.experiments.feature_selection import (
    bound_trace,
    run_selection_trials,
    run_ve_select_comparison,
)
from repro.experiments.label_noise import run_label_noise
from repro.experiments.scheduler_eval import run_scheduler_comparison
from repro.experiments.tables import dataset_statistics_rows, feature_extractor_rows


class TestTables:
    def test_table2_rows(self):
        rows = dataset_statistics_rows()
        assert len(rows) == 6
        assert {row["dataset"] for row in rows} == {
            "deer", "k20", "k20-skew", "charades", "bears", "bdd",
        }

    def test_table3_rows(self):
        rows = feature_extractor_rows()
        assert [row["feature"] for row in rows] == [
            "r3d", "mvit", "clip", "clip_pooled", "random",
        ]
        assert all(row["throughput"] > 0 for row in rows)


class TestFigure2:
    def test_end_to_end_points(self, tiny_dataset):
        result = run_end_to_end(
            tiny_dataset, num_steps=3, lazy_pool_sizes=(10,), baseline_features=("r3d",)
        )
        methods = {point.method for point in result.points}
        assert methods == {"random", "coreset-pp", "ve-lazy(X=10)", "ve-full"}
        ve_full = result.ve_full_point()
        coreset = next(p for p in result.points if p.method == "coreset-pp")
        assert ve_full.cumulative_visible_latency < coreset.cumulative_visible_latency
        assert len(result.rows()) == 4
        assert "Figure 2" in result.format()


class TestFigure3:
    def test_acquisition_comparison_curves(self, tiny_dataset):
        result = run_acquisition_comparison(
            tiny_dataset, num_steps=3, methods=("random", "ve-sample-cm"), feature="r3d"
        )
        assert set(result.curves) == {"random", "ve-sample-cm"}
        for curve in result.curves.values():
            assert len(curve.f1) == 3
            assert len(curve.smax) == 3
            assert all(0.0 <= value <= 1.0 for value in curve.f1)
            assert all(0.0 <= value <= 1.0 for value in curve.smax)

    def test_all_methods_registered(self):
        assert set(ACQUISITION_METHODS) == {
            "random", "coreset", "cluster-margin", "ve-sample", "ve-sample-cm", "freq",
        }


class TestFigure4:
    def test_feature_quality_rankings(self, tiny_dataset):
        result = run_feature_quality(
            tiny_dataset, num_steps=3, features=("r3d", "random"), include_concat=True
        )
        assert set(result.curves) == {"r3d", "random", "concat"}
        assert result.best_feature() in {"r3d", "concat"}
        ranking = result.ranking()
        assert ranking[0] == result.best_feature()


class TestTable4AndFigures56:
    def test_selection_trials(self, tiny_dataset):
        result = run_selection_trials(tiny_dataset, horizon=20, num_steps=8, seeds=(0,))
        assert len(result.trials) == 1
        assert 0.0 <= result.correctness <= 1.0
        row = result.row()
        assert row["dataset"] == "tiny"
        assert row["horizon"] == 20

    def test_bound_trace_shape(self, tiny_dataset):
        rows = bound_trace(tiny_dataset, num_steps=5, horizon=20)
        assert rows
        assert {"step", "feature", "lower_bound", "upper_bound"} <= set(rows[0])
        assert all(row["upper_bound"] >= row["lower_bound"] - 1e-9 for row in rows)


class TestFigure7:
    def test_ve_select_comparison(self, tiny_dataset):
        result = run_ve_select_comparison(tiny_dataset, num_steps=3)
        assert len(result.ve_select_f1) == 3
        assert result.best_feature != result.worst_feature or len(result.best_f1) == 3
        rows = result.rows()
        assert {row["method"] for row in rows} == {"ve-select", "best", "worst", "ve-sample-best"}


class TestFigure8:
    def test_scheduler_comparison_points(self, tiny_dataset):
        result = run_scheduler_comparison(
            tiny_dataset, num_steps=3, lazy_pool_sizes=(10,), include_partial=False
        )
        variants = {point.variant for point in result.points}
        assert variants == {"ve-lazy(PP)", "ve-lazy(X=10)", "ve-full"}
        assert result.point("ve-full").cumulative_visible_latency < result.point(
            "ve-lazy(PP)"
        ).cumulative_visible_latency

    def test_unknown_variant_lookup_returns_none(self, tiny_dataset):
        result = run_scheduler_comparison(
            tiny_dataset, num_steps=2, lazy_pool_sizes=(), include_partial=False
        )
        assert result.point("nonexistent") is None


class TestFigure9:
    def test_label_noise_curves(self, tiny_dataset):
        result = run_label_noise(tiny_dataset, noise_rates=(0.0, 0.2), num_steps=3)
        assert set(result.curves) == {0.0, 0.2}
        assert result.best_feature
        assert result.worst_feature
        for curve in result.curves.values():
            assert len(curve.f1) == 3
        assert len(result.rows()) == 4
