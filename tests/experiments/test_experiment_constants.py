"""Consistency tests for experiment-level constants and configuration."""

from repro.datasets.catalog import DATASET_NAMES, dataset_spec
from repro.experiments.acquisition import ACQUISITION_METHODS, BEST_FEATURE_BY_DATASET
from repro.experiments.end_to_end import DEFAULT_FIG2_DATASETS
from repro.experiments.scheduler_eval import DEFAULT_FIG8_DATASETS
from repro.features.pretrained import DEFAULT_EXTRACTOR_NAMES


class TestExperimentConstants:
    def test_best_feature_defined_for_every_dataset(self):
        assert set(BEST_FEATURE_BY_DATASET) == set(DATASET_NAMES)

    def test_best_feature_is_a_known_extractor(self):
        for feature in BEST_FEATURE_BY_DATASET.values():
            assert feature in DEFAULT_EXTRACTOR_NAMES
            assert feature != "random"

    def test_best_feature_is_listed_as_correct_for_its_dataset(self):
        for dataset, feature in BEST_FEATURE_BY_DATASET.items():
            assert feature in dataset_spec(dataset).correct_features

    def test_figure_dataset_lists_match_paper(self):
        assert DEFAULT_FIG2_DATASETS == ("deer", "k20", "k20-skew")
        assert DEFAULT_FIG8_DATASETS == ("deer", "k20", "k20-skew")

    def test_acquisition_methods_cover_paper_figure3(self):
        assert set(ACQUISITION_METHODS) == {
            "random",
            "coreset",
            "cluster-margin",
            "ve-sample",
            "ve-sample-cm",
            "freq",
        }

    def test_dynamic_methods_do_not_force_an_acquisition(self):
        for name in ("ve-sample", "ve-sample-cm", "freq"):
            assert ACQUISITION_METHODS[name]["force_acquisition"] is None

    def test_fixed_methods_force_their_acquisition(self):
        assert ACQUISITION_METHODS["random"]["force_acquisition"] == "random"
        assert ACQUISITION_METHODS["coreset"]["force_acquisition"] == "coreset"
        assert ACQUISITION_METHODS["cluster-margin"]["force_acquisition"] == "cluster-margin"

    def test_frequency_method_uses_frequency_test(self):
        assert ACQUISITION_METHODS["freq"]["skew_test"] == "frequency"
