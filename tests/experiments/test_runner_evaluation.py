"""Tests for the experiment runner, evaluator, and reporting helpers."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.evaluation import ModelEvaluator
from repro.experiments.reporting import format_series, format_table, summarize_series
from repro.experiments.runner import RunnerConfig, SessionRunner


class TestReporting:
    def test_format_table_alignment_and_values(self):
        rows = [
            {"method": "random", "f1": 0.51234, "latency": 3},
            {"method": "ve-full", "f1": 0.6, "latency": None},
        ]
        text = format_table(rows, precision=2)
        assert "method" in text and "ve-full" in text
        assert "0.51" in text
        assert "-" in text  # None rendered as a dash

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_respects_column_order(self):
        rows = [{"b": 1, "a": 2}]
        text = format_table(rows, columns=["a", "b"])
        header = text.splitlines()[0]
        assert header.index("a") < header.index("b")

    def test_format_series(self):
        text = format_series({"f1": [0.1, 0.2, 0.3]}, every=1)
        assert "step" in text
        assert "0.300" in text

    def test_format_series_unequal_lengths(self):
        text = format_series({"a": [0.1, 0.2], "b": [0.3]}, every=1)
        assert "-" in text

    def test_summarize_series(self):
        summary = summarize_series([0.1, 0.5, 0.3])
        assert summary["min"] == pytest.approx(0.1)
        assert summary["max"] == pytest.approx(0.5)
        assert summary["final"] == pytest.approx(0.3)
        assert summarize_series([]) == {"mean": 0.0, "min": 0.0, "max": 0.0, "final": 0.0}


class TestModelEvaluator:
    def test_eval_features_cached_and_shaped(self, tiny_dataset):
        evaluator = ModelEvaluator(tiny_dataset, seed=0)
        features = evaluator.eval_features("r3d")
        assert features.shape == (evaluator.num_examples, 512)
        assert evaluator.eval_features("r3d") is features  # cache hit

    def test_evaluate_manager_without_model_is_zero(self, tiny_dataset, vocal_tiny):
        evaluator = ModelEvaluator(tiny_dataset, seed=0)
        assert evaluator.evaluate_manager(vocal_tiny.session.models, "r3d") == 0.0

    def test_train_and_evaluate_beats_random_guessing(self, tiny_dataset):
        import numpy as np

        from repro.features.pretrained import build_default_registry
        from repro.types import ClipSpec
        from repro.video.decoder import Decoder

        evaluator = ModelEvaluator(tiny_dataset, seed=0)
        registry = build_default_registry(
            tiny_dataset.train_corpus.latent_dim, tiny_dataset.feature_qualities, seed=0
        )
        decoder = Decoder(tiny_dataset.train_corpus)
        clips = [ClipSpec(v.vid, 2.0, 3.0) for v in tiny_dataset.train_corpus.videos()]
        labels = [tiny_dataset.train_corpus.dominant_label(c) for c in clips]
        extractor = registry.get("r3d")
        matrix = np.vstack([extractor.extract(decoder.decode(c)) for c in clips])
        f1 = evaluator.train_and_evaluate(matrix, labels, "r3d")
        assert f1 > 1.0 / len(tiny_dataset.class_names)


class TestSessionRunner:
    def test_run_produces_step_metrics(self, tiny_dataset):
        runner = SessionRunner(tiny_dataset, RunnerConfig(num_steps=4, batch_size=4, seed=0))
        result = runner.run()
        assert len(result.steps) == 4
        assert result.steps[-1].num_labels == 16
        assert all(step.visible_latency >= 0 for step in result.steps)
        assert result.final_f1 == result.steps[-1].f1
        # Cumulative latency is non-decreasing.
        latencies = [step.cumulative_visible_latency for step in result.steps]
        assert latencies == sorted(latencies)

    def test_invalid_steps_rejected(self, tiny_dataset):
        runner = SessionRunner(tiny_dataset, RunnerConfig(num_steps=3))
        with pytest.raises(ExperimentError):
            runner.run(num_steps=0)

    def test_force_feature_restricts_candidates(self, tiny_dataset):
        runner = SessionRunner(
            tiny_dataset, RunnerConfig(num_steps=2, force_feature="clip", seed=0)
        )
        result = runner.run()
        assert all(step.feature == "clip" for step in result.steps)
        assert runner.vocal.session.alm.candidate_features() == ["clip"]

    def test_force_random_acquisition(self, tiny_dataset):
        runner = SessionRunner(
            tiny_dataset,
            RunnerConfig(num_steps=3, force_acquisition="random", force_feature="r3d", seed=0),
        )
        result = runner.run()
        assert all(step.acquisition == "random" for step in result.steps)

    def test_preprocess_all_adds_latency(self, tiny_dataset):
        with_pp = SessionRunner(
            tiny_dataset,
            RunnerConfig(num_steps=2, preprocess_all=True, force_feature="r3d", seed=0),
        ).run()
        without_pp = SessionRunner(
            tiny_dataset,
            RunnerConfig(num_steps=2, preprocess_all=False, force_feature="r3d", seed=0),
        ).run()
        assert with_pp.preprocessing_latency > 0
        assert with_pp.cumulative_visible_latency > without_pp.cumulative_visible_latency

    def test_label_noise_uses_noisy_oracle(self, tiny_dataset):
        from repro.core.oracle import NoisyOracleUser

        runner = SessionRunner(tiny_dataset, RunnerConfig(num_steps=1, label_noise=0.2, seed=0))
        assert isinstance(runner.oracle, NoisyOracleUser)

    def test_mean_f1_last_n(self, tiny_dataset):
        result = SessionRunner(tiny_dataset, RunnerConfig(num_steps=3, seed=0)).run()
        assert result.mean_f1(last_n=1) == pytest.approx(result.final_f1)
        assert 0.0 <= result.mean_f1() <= 1.0

    def test_serial_strategy_has_higher_latency(self, tiny_dataset):
        serial = SessionRunner(
            tiny_dataset, RunnerConfig(num_steps=3, strategy="serial", seed=0)
        ).run()
        full = SessionRunner(
            tiny_dataset, RunnerConfig(num_steps=3, strategy="ve-full", seed=0)
        ).run()
        assert serial.cumulative_visible_latency > full.cumulative_visible_latency
