"""Tests for the pluggable execution engines.

Covers the thread-pool engine's dispatch/preemption/accounting semantics,
its equivalence with the simulated engine on seeded workloads (the
property test the issue calls for), and the engine factory.
"""

import random
import threading

import pytest

from repro.exceptions import SchedulerError
from repro.scheduler.clock import SimulatedClock
from repro.scheduler.engine import (
    ENGINE_NAMES,
    SimulatedEngine,
    ThreadPoolEngine,
    WallClock,
    build_engine,
)
from repro.scheduler.scheduler import TaskScheduler
from repro.scheduler.tasks import Task, TaskKind

#: Wall seconds per cost-model second in these tests: fast but comfortably
#: above timer resolution.
SCALE = 2e-3


@pytest.fixture
def thread_scheduler():
    engine = ThreadPoolEngine(num_workers=2, time_scale=SCALE, checkpoint_interval=0.25)
    scheduler = TaskScheduler(engine=engine)
    scheduler.begin_iteration(1)
    yield scheduler
    engine.shutdown()


class TestWallClock:
    def test_reports_scaled_elapsed_time(self):
        clock = WallClock(time_scale=SCALE)
        before = clock.now
        clock.advance(1.0)  # one cost-model second == SCALE wall seconds
        assert clock.now - before >= 1.0

    def test_advance_to_and_validation(self):
        clock = WallClock(time_scale=SCALE)
        target = clock.now + 0.5
        assert clock.advance_to(target) >= target
        assert clock.advance_to(target - 10.0) >= target  # no-op when past
        with pytest.raises(SchedulerError):
            clock.advance(-1.0)
        with pytest.raises(SchedulerError):
            WallClock(time_scale=0.0)


class TestBuildEngine:
    def test_builds_both_engines(self):
        assert set(ENGINE_NAMES) == {"simulated", "threads"}
        simulated = build_engine("simulated")
        assert isinstance(simulated, SimulatedEngine)
        assert simulated.shard_executor() is None
        threads = build_engine("threads", num_workers=3, time_scale=SCALE)
        try:
            assert isinstance(threads, ThreadPoolEngine)
            assert threads.num_workers == 3
            assert threads.shard_executor() is not None
        finally:
            threads.shutdown()

    def test_unknown_engine_rejected(self):
        with pytest.raises(SchedulerError):
            build_engine("fibers")

    def test_thread_engine_validation(self):
        with pytest.raises(SchedulerError):
            ThreadPoolEngine(num_workers=0)
        with pytest.raises(SchedulerError):
            ThreadPoolEngine(checkpoint_interval=0.0)

    def test_simulated_engine_accepts_shared_clock(self):
        clock = SimulatedClock(start=5.0)
        scheduler = TaskScheduler(engine=SimulatedEngine(clock))
        assert scheduler.clock is clock


class TestThreadPoolForeground:
    def test_foreground_measures_wall_latency_and_runs_action(self, thread_scheduler):
        seen = []
        thread_scheduler.run_foreground(Task(TaskKind.MODEL_TRAINING, 1.0, action=seen.append))
        record = thread_scheduler.current_iteration
        # Measured wall time: at least the performed cost, not wildly more.
        assert record.visible_latency >= 1.0
        assert record.visible_by_kind[TaskKind.MODEL_TRAINING] >= 1.0
        assert len(seen) == 1 and seen[0] >= 1.0

    def test_payload_receives_cost_slices(self, thread_scheduler):
        slices = []
        thread_scheduler.run_foreground(
            Task(TaskKind.FEATURE_EXTRACTION, 1.0, payload=slices.append)
        )
        assert sum(slices) == pytest.approx(1.0)
        assert all(s <= 0.25 + 1e-9 for s in slices)  # checkpoint-sized


class TestThreadPoolWindow:
    def test_priority_order_and_completion(self):
        engine = ThreadPoolEngine(num_workers=1, time_scale=SCALE)
        scheduler = TaskScheduler(engine=engine)
        scheduler.begin_iteration(1)
        order = []
        try:
            scheduler.submit(
                Task(TaskKind.EAGER_FEATURE_EXTRACTION, 0.5, action=lambda t: order.append("eager"))
            )
            scheduler.submit(
                Task(TaskKind.MODEL_TRAINING, 0.5, action=lambda t: order.append("train"))
            )
            scheduler.submit(
                Task(TaskKind.FEATURE_EVALUATION, 0.5, action=lambda t: order.append("eval"))
            )
            completed = scheduler.run_background_window(5.0)
            assert order == ["train", "eval", "eager"]
            assert len(completed) == 3
        finally:
            engine.shutdown()

    def test_workers_run_concurrently(self, thread_scheduler):
        # Two 1.0-unit tasks on two workers: busy time ~2.0 units inside a
        # ~1.0-unit window is only possible with real overlap.
        thread_scheduler.submit(Task(TaskKind.MODEL_TRAINING, 1.0))
        thread_scheduler.submit(Task(TaskKind.FEATURE_EVALUATION, 1.0))
        completed = thread_scheduler.run_background_window(1.6)
        assert len(completed) == 2
        record = thread_scheduler.current_iteration
        assert record.background_time_used == pytest.approx(2.0, abs=0.2)

    def test_pause_and_play_across_windows(self, thread_scheduler):
        finished = []
        thread_scheduler.submit(Task(TaskKind.MODEL_TRAINING, 4.0, action=finished.append))
        thread_scheduler.run_background_window(1.5)
        assert finished == []
        assert thread_scheduler.has_pending(TaskKind.MODEL_TRAINING)
        thread_scheduler.begin_iteration(2)
        thread_scheduler.run_background_window(4.0)
        assert len(finished) == 1
        assert not thread_scheduler.has_pending()

    def test_availability_time_respected(self, thread_scheduler):
        completions = []
        thread_scheduler.submit(
            Task(TaskKind.MODEL_TRAINING, 0.5, action=completions.append), available_at=2.0
        )
        completed = thread_scheduler.run_background_window(6.0)
        assert len(completed) == 1
        assert completions[0] >= 2.5  # not started before its availability time

    def test_idle_factory_fills_window(self, thread_scheduler):
        created = []

        def factory():
            if len(created) >= 3:
                return None
            task = Task(TaskKind.EAGER_FEATURE_EXTRACTION, 0.5)
            created.append(task)
            return task

        thread_scheduler.idle_task_factory = factory
        completed = thread_scheduler.run_background_window(3.0)
        assert len(created) == 3
        assert len(completed) == 3

    def test_idle_capacity_accounted(self, thread_scheduler):
        # Empty window on 2 workers: idle capacity is ~2x the window length.
        thread_scheduler.run_background_window(1.0)
        record = thread_scheduler.current_iteration
        assert record.background_time_used == pytest.approx(0.0)
        assert record.background_idle_time == pytest.approx(2.0, abs=0.1)

    def test_actions_run_on_worker_threads(self, thread_scheduler):
        threads = []
        thread_scheduler.submit(
            Task(TaskKind.MODEL_TRAINING, 0.5, action=lambda t: threads.append(threading.current_thread().name))
        )
        thread_scheduler.run_background_window(1.5)
        assert threads and threads[0].startswith("repro-engine")


class TestThreadPoolDrain:
    def test_drain_completes_everything_as_visible(self, thread_scheduler):
        thread_scheduler.submit(Task(TaskKind.MODEL_TRAINING, 1.0))
        thread_scheduler.submit(Task(TaskKind.FEATURE_EVALUATION, 0.5))
        completed = thread_scheduler.drain()
        assert len(completed) == 2
        assert not thread_scheduler.has_pending()
        record = thread_scheduler.current_iteration
        assert record.visible_latency == pytest.approx(1.5, abs=0.2)
        assert record.background_time_used == pytest.approx(0.0)

    def test_drain_advances_past_deferred_tasks(self, thread_scheduler):
        done = []
        thread_scheduler.submit(
            Task(TaskKind.MODEL_TRAINING, 0.5, action=done.append), available_at=1.0
        )
        completed = thread_scheduler.drain()
        assert len(completed) == 1
        assert done[0] >= 1.5

    def test_shutdown_is_idempotent(self):
        engine = ThreadPoolEngine(num_workers=1, time_scale=SCALE)
        engine.shutdown()
        engine.shutdown()


class TestWorkerErrors:
    def test_failing_action_propagates_without_losing_siblings(self, thread_scheduler):
        def boom(at_time):
            raise RuntimeError("action failed")

        survivor_done = []
        thread_scheduler.submit(Task(TaskKind.MODEL_TRAINING, 0.3, action=boom))
        thread_scheduler.submit(
            Task(TaskKind.EAGER_FEATURE_EXTRACTION, 5.0, action=survivor_done.append)
        )
        with pytest.raises(RuntimeError, match="action failed"):
            thread_scheduler.run_background_window(2.0)
        # The long sibling was paused and requeued, not silently dropped.
        assert thread_scheduler.has_pending(TaskKind.EAGER_FEATURE_EXTRACTION)
        assert survivor_done == []
        # The engine is still usable after the error.
        completed = thread_scheduler.run_background_window(6.0)
        assert [record.kind for record in completed] == [TaskKind.EAGER_FEATURE_EXTRACTION]


def _seeded_workload(seed: int) -> list[Task]:
    """A reproducible mixed workload of immediately-available tasks.

    Availability times are deliberately kept at zero: a wall clock reaches a
    deferred task's availability boundary a hair later than the discrete
    simulated clock, so staggered availabilities are a (documented)
    divergence point between the engines.  What IS pinned as identical —
    priority ordering, task-id tie-breaking, and pause-and-play requeues
    across window boundaries — drives everything below.
    """
    rng = random.Random(seed)
    kinds = [
        TaskKind.MODEL_TRAINING,
        TaskKind.FEATURE_EVALUATION,
        TaskKind.FEATURE_EXTRACTION,
        TaskKind.EAGER_FEATURE_EXTRACTION,
    ]
    return [
        Task(
            kind=rng.choice(kinds),
            duration=round(rng.uniform(0.2, 1.5), 3),
            description=f"task-{seed}-{index}",
        )
        for index in range(12)
    ]


def _completion_order(scheduler: TaskScheduler) -> list[str]:
    return [record.description for record in scheduler.completed_tasks()]


class TestEngineEquivalence:
    """Property test: SimulatedEngine and ThreadPoolEngine(workers=1) complete
    seeded workloads in identical task orders."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_single_worker_matches_simulated_completion_order(self, seed):
        # Several small windows force preemptions and requeues mid-workload.
        windows = [2.5, 2.5, 2.5]

        simulated = TaskScheduler(engine=SimulatedEngine())
        simulated.begin_iteration(1)
        for task in _seeded_workload(seed):
            simulated.submit(task)
        for window in windows:
            simulated.run_background_window(window)
        simulated.drain()
        expected = _completion_order(simulated)
        assert len(expected) == 12

        engine = ThreadPoolEngine(num_workers=1, time_scale=1e-3)
        threaded = TaskScheduler(engine=engine)
        threaded.begin_iteration(1)
        try:
            for task in _seeded_workload(seed):
                threaded.submit(task)
            for window in windows:
                threaded.run_background_window(window)
            threaded.drain()
            assert _completion_order(threaded) == expected
        finally:
            engine.shutdown()


class TestIdleAccountingRegression:
    """Regression tests for idle-time accounting around ``close_iteration``.

    The scenario from the issue: the idle-task factory returns ``None``
    mid-window while a deferred task exists.  Every second of the window must
    land in exactly one bucket (busy or idle) of exactly one record — idle
    spans must never be double-counted, and records frozen by
    ``close_iteration`` must never absorb later window time.
    """

    def test_factory_none_mid_window_counts_idle_exactly_once(self):
        scheduler = TaskScheduler(engine=SimulatedEngine())
        scheduler.begin_iteration(1)
        factory_calls = []
        scheduler.idle_task_factory = lambda: factory_calls.append(1) or None
        scheduler.submit(Task(TaskKind.MODEL_TRAINING, 2.0), available_at=4.0)
        scheduler.run_background_window(10.0)
        record = scheduler.current_iteration
        # Idle 0->4 while waiting, busy 4->6, idle 6->10: never double-counted.
        assert record.background_idle_time == pytest.approx(8.0)
        assert record.background_time_used == pytest.approx(2.0)
        assert record.background_idle_time + record.background_time_used == pytest.approx(10.0)
        assert len(factory_calls) == 2

    def test_window_after_close_never_mutates_frozen_record(self):
        scheduler = TaskScheduler(engine=SimulatedEngine())
        scheduler.begin_iteration(1)
        scheduler.idle_task_factory = lambda: None
        scheduler.submit(Task(TaskKind.MODEL_TRAINING, 2.0), available_at=4.0)
        scheduler.run_background_window(3.0)
        frozen = scheduler.current_iteration
        assert frozen.background_idle_time == pytest.approx(3.0)
        scheduler.close_iteration()

        # Factory still returns None mid-window; the deferred task completes.
        scheduler.run_background_window(4.0)
        overflow = scheduler.current_iteration
        assert overflow is not frozen
        assert overflow.iteration == frozen.iteration
        # The frozen record keeps exactly its pre-close accounting...
        assert frozen.background_idle_time == pytest.approx(3.0)
        assert frozen.background_time_used == pytest.approx(0.0)
        # ...and the overflow record accounts the second window exactly once.
        assert overflow.background_idle_time == pytest.approx(2.0)
        assert overflow.background_time_used == pytest.approx(2.0)
        total_idle = sum(r.background_idle_time for r in scheduler.iteration_records())
        total_busy = sum(r.background_time_used for r in scheduler.iteration_records())
        assert total_idle + total_busy == pytest.approx(7.0)

    def test_thread_engine_idle_never_double_counted(self):
        engine = ThreadPoolEngine(num_workers=1, time_scale=5e-3)
        scheduler = TaskScheduler(engine=engine)
        scheduler.begin_iteration(1)
        scheduler.idle_task_factory = lambda: None
        try:
            scheduler.submit(Task(TaskKind.MODEL_TRAINING, 1.0), available_at=2.0)
            scheduler.run_background_window(4.0)
            record = scheduler.current_iteration
            busy = record.background_time_used
            idle = record.background_idle_time
            # The task ran (possibly preempted near the deadline under timing
            # noise) and never consumed more than its cost.
            assert 0.2 <= busy <= 1.0 + 1e-6
            # One worker, 4-unit window: capacity is 4 units, split exactly
            # once between busy and idle (within timer tolerance) — the
            # double-counting regression would push the sum past capacity.
            assert busy + idle == pytest.approx(4.0, abs=0.3)
        finally:
            engine.shutdown()
