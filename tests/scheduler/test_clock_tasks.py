"""Tests for the simulated clock, task objects, and cost model."""

import pytest

from repro.exceptions import SchedulerError, TaskError
from repro.features.pretrained import PRETRAINED_SPECS
from repro.scheduler.clock import SimulatedClock
from repro.scheduler.cost_model import CostModel
from repro.scheduler.strategies import (
    SERIAL,
    VE_FULL,
    VE_PARTIAL,
    strategy_behaviour,
)
from repro.scheduler.tasks import Task, TaskKind, TaskPriority
from repro.config import SchedulerConfig


class TestClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now == 0.0

    def test_advance(self):
        clock = SimulatedClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_advance_negative_rejected(self):
        with pytest.raises(SchedulerError):
            SimulatedClock().advance(-1.0)

    def test_advance_to_never_goes_backwards(self):
        clock = SimulatedClock(start=5.0)
        clock.advance_to(3.0)
        assert clock.now == 5.0
        clock.advance_to(8.0)
        assert clock.now == 8.0


class TestTask:
    def test_default_priority_by_kind(self):
        training = Task(TaskKind.MODEL_TRAINING, 1.0)
        eager = Task(TaskKind.EAGER_FEATURE_EXTRACTION, 1.0)
        assert training.priority == TaskPriority.MODEL_TRAINING
        assert eager.priority == TaskPriority.EAGER
        assert training.priority < eager.priority

    def test_unknown_kind_rejected(self):
        with pytest.raises(TaskError):
            Task("napping", 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(TaskError):
            Task(TaskKind.MODEL_TRAINING, -1.0)

    def test_partial_work_and_completion(self):
        task = Task(TaskKind.MODEL_TRAINING, 3.0)
        assert task.work(1.0) == 1.0
        assert task.started and not task.finished
        assert task.work(5.0) == 2.0
        assert task.finished

    def test_complete_before_finished_rejected(self):
        task = Task(TaskKind.MODEL_TRAINING, 3.0)
        with pytest.raises(TaskError):
            task.complete(0.0)

    def test_complete_runs_action_with_timestamp(self):
        seen = []
        task = Task(TaskKind.MODEL_TRAINING, 1.0, action=seen.append)
        task.work(1.0)
        record = task.complete(12.0)
        assert seen == [12.0]
        assert record.kind == TaskKind.MODEL_TRAINING
        assert record.completed_at == 12.0

    def test_negative_work_rejected(self):
        task = Task(TaskKind.MODEL_TRAINING, 1.0)
        with pytest.raises(TaskError):
            task.work(-0.5)


class TestCostModel:
    def test_video_extraction_time_follows_throughput(self):
        cost = CostModel()
        r3d = cost.video_extraction_time(PRETRAINED_SPECS["r3d"], 10.0)
        mvit = cost.video_extraction_time(PRETRAINED_SPECS["mvit"], 10.0)
        assert r3d == pytest.approx(1 / 4.03)
        assert mvit == pytest.approx(1 / 2.93)
        # Longer videos cost proportionally more.
        assert cost.video_extraction_time(PRETRAINED_SPECS["r3d"], 20.0) == pytest.approx(2 / 4.03)

    def test_video_extraction_invalid_duration(self):
        with pytest.raises(SchedulerError):
            CostModel().video_extraction_time(PRETRAINED_SPECS["r3d"], 0.0)

    def test_batch_time_includes_pipeline_setup(self):
        cost = CostModel(pipeline_setup_time=2.0)
        total = cost.extraction_batch_time(PRETRAINED_SPECS["r3d"], 5, 10.0)
        assert total == pytest.approx(2.0 + 5 / 4.03)
        assert cost.extraction_batch_time(PRETRAINED_SPECS["r3d"], 0, 10.0) == 0.0

    def test_inference_and_selection_costs(self):
        cost = CostModel()
        assert cost.inference_time(5) == pytest.approx(5 * cost.inference_time_per_clip)
        assert cost.selection_time(5, active=False) < cost.selection_time(5, active=True)

    def test_training_and_evaluation_grow_with_labels(self):
        cost = CostModel()
        assert cost.training_time(100) > cost.training_time(10)
        assert cost.evaluation_time(100) > cost.evaluation_time(10)
        # Feature evaluation (k-fold) costs more than a single training run.
        assert cost.evaluation_time(50) > cost.training_time(50) * 0.5

    def test_feature_extraction_dwarfs_inference(self):
        cost = CostModel()
        extraction = cost.video_extraction_time(PRETRAINED_SPECS["mvit"], 10.0)
        assert extraction > 5 * cost.inference_time_per_clip

    def test_jit_offset_matches_paper_formula(self):
        cost = CostModel(training_base_time=1.0, training_time_per_label=0.02)
        # T_m for 50 labels = 2.0 s, T_user = 10 s -> ceil(2/10) = 1 label
        # before the end, so training starts after B - 1 = 4 labels.
        offset = cost.jit_training_offset(batch_size=5, user_labeling_time=10.0, num_labels=50)
        assert offset == pytest.approx(40.0)

    def test_jit_offset_long_training_starts_immediately(self):
        cost = CostModel(training_base_time=100.0)
        offset = cost.jit_training_offset(batch_size=5, user_labeling_time=10.0, num_labels=10)
        assert offset == 0.0

    def test_jit_offset_zero_user_time(self):
        assert CostModel().jit_training_offset(5, 0.0, 10) == 0.0


class TestStrategyBehaviour:
    def test_serial_is_fully_synchronous(self):
        behaviour = strategy_behaviour(SERIAL)
        assert behaviour.synchronous_training
        assert behaviour.synchronous_evaluation
        assert not behaviour.eager_extraction
        assert behaviour.is_serial

    def test_partial_defers_training(self):
        behaviour = strategy_behaviour(VE_PARTIAL)
        assert not behaviour.synchronous_training
        assert behaviour.jit_training
        assert not behaviour.eager_extraction

    def test_full_adds_eager_extraction(self):
        behaviour = strategy_behaviour(VE_FULL)
        assert behaviour.eager_extraction
        assert not behaviour.synchronous_training

    def test_resolves_from_config(self):
        behaviour = strategy_behaviour(SchedulerConfig(strategy="serial"))
        assert behaviour.name == SERIAL

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SchedulerError):
            strategy_behaviour("warp-speed")
