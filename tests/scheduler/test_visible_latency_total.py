"""Regression tests for the O(1) cumulative visible-latency running total.

``cumulative_visible_latency`` used to recompute ``sum()`` over every record
on each call; it now maintains a running total of closed records.  Float
addition is not associative, so the test pins *bit-exact* equality (``==``,
no tolerance) against the recomputed left-to-right sum at every step — the
optimisation must not shift experiment results by even one ulp.
"""

import random

from repro.scheduler.scheduler import TaskScheduler
from repro.scheduler.tasks import Task, TaskKind


def recomputed(scheduler):
    """The old implementation: fresh left-to-right sum over all records."""
    return sum(record.visible_latency for record in scheduler.iteration_records())


class TestRunningTotal:
    def test_bit_exact_against_recomputed_sum(self):
        """Property test: random foreground charges over many iterations; the
        running total must equal the recomputed sum exactly after every
        mutation point."""
        rng = random.Random(123)
        scheduler = TaskScheduler()
        for iteration in range(1, 40):
            scheduler.begin_iteration(iteration)
            assert scheduler.cumulative_visible_latency() == recomputed(scheduler)
            for _ in range(rng.randint(0, 4)):
                # Irrational-ish durations maximise float rounding exposure.
                scheduler.run_foreground(
                    Task(kind=TaskKind.SAMPLE_SELECTION, duration=rng.uniform(0.0, 3.0) / 3.0)
                )
                assert scheduler.cumulative_visible_latency() == recomputed(scheduler)
            scheduler.close_iteration()
        assert scheduler.cumulative_visible_latency() == recomputed(scheduler)

    def test_overflow_records_fold_in_exactly_once(self):
        """Foreground work after close_iteration opens an overflow record;
        the total must still match the recomputed sum bit-exactly."""
        scheduler = TaskScheduler()
        scheduler.begin_iteration(1)
        scheduler.run_foreground(Task(kind=TaskKind.SAMPLE_SELECTION, duration=1.0 / 3.0))
        scheduler.close_iteration()
        # Post-close work (a watch/search between Explore calls).
        scheduler.run_foreground(Task(kind=TaskKind.VECTOR_SEARCH, duration=2.0 / 7.0))
        scheduler.begin_iteration(2)
        scheduler.run_foreground(Task(kind=TaskKind.SAMPLE_SELECTION, duration=1.0 / 9.0))
        assert len(scheduler.iteration_records()) == 3
        assert scheduler.cumulative_visible_latency() == recomputed(scheduler)

    def test_empty_and_single_record(self):
        scheduler = TaskScheduler()
        assert scheduler.cumulative_visible_latency() == 0.0
        scheduler.begin_iteration(1)
        assert scheduler.cumulative_visible_latency() == 0.0
        scheduler.run_foreground(Task(kind=TaskKind.SAMPLE_SELECTION, duration=0.7))
        assert scheduler.cumulative_visible_latency() == recomputed(scheduler)

    def test_drained_background_counts_as_visible(self):
        scheduler = TaskScheduler()
        scheduler.begin_iteration(1)
        scheduler.submit(Task(kind=TaskKind.MODEL_TRAINING, duration=1.0 / 3.0))
        scheduler.submit(Task(kind=TaskKind.FEATURE_EXTRACTION, duration=1.0 / 7.0))
        scheduler.drain()
        scheduler.begin_iteration(2)
        scheduler.run_foreground(Task(kind=TaskKind.SAMPLE_SELECTION, duration=1.0 / 11.0))
        assert scheduler.cumulative_visible_latency() == recomputed(scheduler)
