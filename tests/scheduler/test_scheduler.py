"""Tests for the priority task scheduler."""

import pytest

from repro.exceptions import SchedulerError
from repro.scheduler.clock import SimulatedClock
from repro.scheduler.scheduler import TaskScheduler
from repro.scheduler.tasks import Task, TaskKind


def make_scheduler():
    scheduler = TaskScheduler(SimulatedClock())
    scheduler.begin_iteration(1)
    return scheduler


class TestForeground:
    def test_foreground_advances_clock_and_latency(self):
        scheduler = make_scheduler()
        scheduler.run_foreground(Task(TaskKind.SAMPLE_SELECTION, 0.5))
        scheduler.run_foreground(Task(TaskKind.MODEL_INFERENCE, 0.25))
        assert scheduler.clock.now == pytest.approx(0.75)
        record = scheduler.current_iteration
        assert record.visible_latency == pytest.approx(0.75)
        assert record.visible_by_kind[TaskKind.SAMPLE_SELECTION] == pytest.approx(0.5)

    def test_foreground_runs_action(self):
        scheduler = make_scheduler()
        seen = []
        scheduler.run_foreground(Task(TaskKind.MODEL_TRAINING, 1.0, action=seen.append))
        assert seen == [pytest.approx(1.0)]

    def test_current_iteration_requires_begin(self):
        scheduler = TaskScheduler()
        with pytest.raises(SchedulerError):
            scheduler.current_iteration

    def test_foreground_before_begin_opens_own_record(self):
        scheduler = TaskScheduler()
        scheduler.run_foreground(Task(TaskKind.VECTOR_SEARCH, 0.5))
        assert scheduler.current_iteration.visible_latency == pytest.approx(0.5)
        assert scheduler.cumulative_visible_latency() == pytest.approx(0.5)

    def test_closed_iteration_record_is_frozen(self):
        scheduler = make_scheduler()
        scheduler.run_foreground(Task(TaskKind.SAMPLE_SELECTION, 1.0))
        closed = scheduler.current_iteration
        scheduler.close_iteration()
        scheduler.run_foreground(Task(TaskKind.VECTOR_SEARCH, 0.25))
        # The reported record did not change; an overflow record absorbed the
        # late work under the same iteration number.
        assert closed.visible_latency == pytest.approx(1.0)
        assert TaskKind.VECTOR_SEARCH not in closed.visible_by_kind
        overflow = scheduler.current_iteration
        assert overflow is not closed
        assert overflow.iteration == closed.iteration
        assert scheduler.cumulative_visible_latency() == pytest.approx(1.25)

    def test_background_window_respects_closed_record(self):
        scheduler = make_scheduler()
        scheduler.run_foreground(Task(TaskKind.SAMPLE_SELECTION, 1.0))
        closed = scheduler.current_iteration
        scheduler.close_iteration()
        scheduler.submit(Task(TaskKind.MODEL_TRAINING, 2.0))
        scheduler.run_background_window(5.0)
        assert closed.background_time_used == pytest.approx(0.0)
        assert scheduler.current_iteration is not closed
        assert scheduler.current_iteration.background_time_used == pytest.approx(2.0)

    def test_drain_respects_closed_record(self):
        scheduler = make_scheduler()
        scheduler.run_foreground(Task(TaskKind.SAMPLE_SELECTION, 1.0))
        closed = scheduler.current_iteration
        scheduler.close_iteration()
        scheduler.submit(Task(TaskKind.MODEL_TRAINING, 2.0))
        scheduler.drain()
        assert closed.visible_latency == pytest.approx(1.0)
        assert scheduler.current_iteration is not closed
        assert scheduler.cumulative_visible_latency() == pytest.approx(3.0)


class TestBackgroundWindow:
    def test_tasks_run_in_priority_order(self):
        scheduler = make_scheduler()
        order = []
        scheduler.submit(Task(TaskKind.EAGER_FEATURE_EXTRACTION, 1.0, action=lambda t: order.append("eager")))
        scheduler.submit(Task(TaskKind.MODEL_TRAINING, 1.0, action=lambda t: order.append("train")))
        scheduler.submit(Task(TaskKind.FEATURE_EVALUATION, 1.0, action=lambda t: order.append("eval")))
        completed = scheduler.run_background_window(10.0)
        assert order == ["train", "eval", "eager"]
        assert len(completed) == 3
        assert scheduler.clock.now == pytest.approx(10.0)

    def test_unfinished_task_resumes_next_window(self):
        scheduler = make_scheduler()
        finished = []
        scheduler.submit(Task(TaskKind.MODEL_TRAINING, 5.0, action=finished.append))
        scheduler.run_background_window(2.0)
        assert finished == []
        assert scheduler.has_pending(TaskKind.MODEL_TRAINING)
        scheduler.begin_iteration(2)
        scheduler.run_background_window(4.0)
        assert len(finished) == 1
        # Completed after 3 more seconds of the second window (2 + 3 = 5).
        assert finished[0] == pytest.approx(5.0)

    def test_availability_time_respected(self):
        scheduler = make_scheduler()
        completions = []
        scheduler.submit(
            Task(TaskKind.MODEL_TRAINING, 1.0, action=completions.append), available_at=4.0
        )
        scheduler.run_background_window(10.0)
        assert completions == [pytest.approx(5.0)]

    def test_window_accounts_idle_time(self):
        scheduler = make_scheduler()
        scheduler.run_background_window(3.0)
        record = scheduler.current_iteration
        assert record.background_idle_time == pytest.approx(3.0)
        assert record.background_time_used == 0.0

    def test_idle_task_factory_fills_empty_queue(self):
        scheduler = make_scheduler()
        created = []

        def factory():
            if len(created) >= 3:
                return None
            task = Task(TaskKind.EAGER_FEATURE_EXTRACTION, 1.0, action=lambda t: None)
            created.append(task)
            return task

        scheduler.idle_task_factory = factory
        scheduler.run_background_window(10.0)
        assert len(created) == 3
        assert scheduler.current_iteration.background_time_used == pytest.approx(3.0)

    def test_negative_window_rejected(self):
        with pytest.raises(SchedulerError):
            make_scheduler().run_background_window(-1.0)

    def test_pending_counts(self):
        scheduler = make_scheduler()
        assert not scheduler.has_pending()
        scheduler.submit(Task(TaskKind.MODEL_TRAINING, 1.0))
        assert scheduler.pending_count() == 1
        assert scheduler.has_pending(TaskKind.MODEL_TRAINING)
        assert not scheduler.has_pending(TaskKind.FEATURE_EVALUATION)


class TestDrain:
    def test_drain_runs_everything_and_counts_as_visible(self):
        scheduler = make_scheduler()
        scheduler.submit(Task(TaskKind.MODEL_TRAINING, 2.0))
        scheduler.submit(Task(TaskKind.FEATURE_EVALUATION, 1.0))
        completed = scheduler.drain()
        assert len(completed) == 2
        assert scheduler.current_iteration.visible_latency == pytest.approx(3.0)
        assert not scheduler.has_pending()

    def test_drain_respects_time_limit(self):
        scheduler = make_scheduler()
        scheduler.submit(Task(TaskKind.MODEL_TRAINING, 5.0))
        completed = scheduler.drain(time_limit=2.0)
        assert completed == []
        assert scheduler.has_pending()

    def test_drain_skips_future_available_tasks_by_advancing(self):
        scheduler = make_scheduler()
        done = []
        scheduler.submit(Task(TaskKind.MODEL_TRAINING, 1.0, action=done.append), available_at=3.0)
        scheduler.drain()
        assert done == [pytest.approx(4.0)]


class TestAccounting:
    def test_cumulative_latency_across_iterations(self):
        scheduler = TaskScheduler()
        for iteration in range(1, 4):
            scheduler.begin_iteration(iteration)
            scheduler.run_foreground(Task(TaskKind.MODEL_INFERENCE, 1.0))
        assert scheduler.cumulative_visible_latency() == pytest.approx(3.0)
        assert len(scheduler.iteration_records()) == 3

    def test_completed_tasks_recorded_in_order(self):
        scheduler = make_scheduler()
        scheduler.run_foreground(Task(TaskKind.SAMPLE_SELECTION, 0.1, description="select"))
        scheduler.submit(Task(TaskKind.MODEL_TRAINING, 0.5, description="train"))
        scheduler.run_background_window(1.0)
        kinds = [record.kind for record in scheduler.completed_tasks()]
        assert kinds == [TaskKind.SAMPLE_SELECTION, TaskKind.MODEL_TRAINING]
