"""Tests for the skew-detection statistical tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ALMConfig
from repro.exceptions import ALMError
from repro.alm.skew import SkewDetector, anderson_darling_pvalue, frequency_test_pvalue


class TestAndersonDarling:
    def test_uniform_counts_not_significant(self):
        assert anderson_darling_pvalue({"a": 20, "b": 20, "c": 20}) > 0.05

    def test_heavily_skewed_counts_significant(self):
        assert anderson_darling_pvalue({"a": 95, "b": 3, "c": 2}) < 0.01

    def test_single_class_degenerate(self):
        assert anderson_darling_pvalue({"a": 50}) == 1.0

    def test_few_labels_returns_high_pvalue(self):
        assert anderson_darling_pvalue({"a": 1, "b": 0}) == 1.0

    def test_pvalue_bounds(self):
        value = anderson_darling_pvalue({"a": 10, "b": 4, "c": 1})
        assert 0.0 <= value <= 1.0


class TestFrequencyTest:
    def test_uniform_counts_not_significant(self):
        assert frequency_test_pvalue([20, 20, 20], multiplier=2.0) > 0.05

    def test_extreme_skew_significant(self):
        assert frequency_test_pvalue([97, 2, 1], multiplier=2.0) < 0.05

    def test_slight_imbalance_not_flagged(self):
        # Mild splits should not be treated as skew even with many labels
        # (the property the paper highlights over the Anderson-Darling test).
        assert frequency_test_pvalue([530, 470], multiplier=2.0) > 0.05
        assert frequency_test_pvalue([5300, 4700], multiplier=2.0) > 0.05

    def test_anderson_darling_flags_slight_imbalance_eventually(self):
        # By contrast the AD test does become significant for large samples.
        assert anderson_darling_pvalue({"a": 5300, "b": 4700}) < 0.05

    def test_invalid_multiplier(self):
        with pytest.raises(ALMError):
            frequency_test_pvalue([5, 5], multiplier=0.5)

    def test_zero_total(self):
        assert frequency_test_pvalue([0, 0]) == 1.0

    def test_single_class(self):
        assert frequency_test_pvalue([10]) == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=2, max_size=10))
    def test_pvalue_in_unit_interval(self, counts):
        value = frequency_test_pvalue(counts, multiplier=2.0)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=10, max_value=100))
    def test_perfectly_balanced_never_flagged(self, num_classes, per_class):
        counts = [per_class] * num_classes
        assert frequency_test_pvalue(counts, multiplier=2.0) > 0.05


class TestSkewDetector:
    def test_not_enough_labels_is_not_skewed(self):
        detector = SkewDetector(ALMConfig(min_labels_for_skew_test=10))
        decision = detector.evaluate({"a": 4, "b": 1})
        assert not decision.is_skewed
        assert decision.p_value == 1.0

    def test_uniform_labels_not_skewed(self):
        detector = SkewDetector()
        decision = detector.evaluate({"a": 30, "b": 30, "c": 30})
        assert not decision.is_skewed

    def test_skewed_labels_detected(self):
        detector = SkewDetector()
        decision = detector.evaluate({"a": 80, "b": 5, "c": 3})
        assert decision.is_skewed
        assert decision.test == "anderson-darling"

    def test_frequency_mode(self):
        detector = SkewDetector(ALMConfig(skew_test="frequency"))
        decision = detector.evaluate({"a": 80, "b": 5, "c": 3})
        assert decision.test == "frequency"
        assert decision.is_skewed

    def test_frequency_mode_counts_unlabeled_classes(self):
        detector = SkewDetector(ALMConfig(skew_test="frequency"))
        # 3 observed classes but a 10-class vocabulary: the missing classes
        # have zero counts, which the frequency test treats as strong skew
        # once enough labels have accumulated.
        decision = detector.evaluate({"a": 60, "b": 60, "c": 60}, num_known_classes=10)
        assert decision.is_skewed

    def test_decision_records_counts(self):
        detector = SkewDetector()
        decision = detector.evaluate({"a": 50, "b": 5})
        assert decision.num_labels == 55
        assert decision.num_classes == 2

    def test_single_class_not_evaluated(self):
        detector = SkewDetector()
        decision = detector.evaluate({"a": 50})
        assert not decision.is_skewed
