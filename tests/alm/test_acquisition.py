"""Tests for acquisition functions and the k-means helper."""

import numpy as np
import pytest

from repro.exceptions import ALMError, AcquisitionError
from repro.alm.acquisition import (
    AcquisitionContext,
    ClusterMarginAcquisition,
    CoresetAcquisition,
    RandomAcquisition,
    RareCategoryUncertaintyAcquisition,
)
from repro.alm.clustering import kmeans
from repro.models.linear import SoftmaxRegression
from repro.types import ClipSpec, VideoRecord


def videos(count=10):
    return [VideoRecord(vid=i, path=f"{i}.mp4", duration=10.0) for i in range(count)]


def make_context(num_candidates=20, dim=6, seed=0, with_model=False, label_counts=None, target=None):
    rng = np.random.default_rng(seed)
    candidates = [ClipSpec(i, 0.0, 1.0) for i in range(num_candidates)]
    features = rng.standard_normal((num_candidates, dim))
    model = None
    if with_model:
        train = rng.standard_normal((40, dim)) * 2
        labels = ["pos" if row[0] > 0 else "neg" for row in train]
        model = SoftmaxRegression(["pos", "neg"]).fit(train, labels)
    return AcquisitionContext(
        candidates=candidates,
        candidate_features=features,
        model=model,
        label_counts=label_counts or {},
        target_label=target,
    )


class TestKMeans:
    def test_two_well_separated_clusters(self):
        rng = np.random.default_rng(0)
        points = np.vstack([rng.standard_normal((20, 2)) + 10, rng.standard_normal((20, 2)) - 10])
        result = kmeans(points, 2, rng=rng)
        first_half = set(result.assignments[:20].tolist())
        second_half = set(result.assignments[20:].tolist())
        assert len(first_half) == 1 and len(second_half) == 1
        assert first_half != second_half

    def test_more_clusters_than_points_clipped(self):
        points = np.zeros((3, 2))
        result = kmeans(points, 10, rng=np.random.default_rng(0))
        assert result.num_clusters == 3

    def test_members_partition_points(self):
        rng = np.random.default_rng(1)
        points = rng.standard_normal((30, 3))
        result = kmeans(points, 4, rng=rng)
        all_members = sorted(np.concatenate([result.members(c) for c in range(result.num_clusters)]).tolist())
        assert all_members == list(range(30))

    def test_empty_input_rejected(self):
        with pytest.raises(ALMError):
            kmeans(np.zeros((0, 3)), 2)

    def test_inertia_nonnegative(self):
        rng = np.random.default_rng(2)
        result = kmeans(rng.standard_normal((25, 4)), 3, rng=rng)
        assert result.inertia >= 0.0

    def test_ann_backend_misses_fall_back_to_exact(self):
        # LSH over a tiny centroid set routinely returns the -1/inf
        # no-neighbour sentinel; every point must still get an assignment.
        rng = np.random.default_rng(3)
        points = rng.standard_normal((50, 8))
        for k in (1, 2, 5):
            result = kmeans(points, k, rng=np.random.default_rng(0), index_backend="lsh")
            assert (result.assignments >= 0).all()
            assert (result.assignments < result.num_clusters).all()
            assert np.isfinite(result.inertia)


class TestRandomAcquisition:
    def test_selects_requested_count(self, rng):
        clips = RandomAcquisition().select(videos(), 5, 1.0, rng)
        assert len(clips) == 5
        assert all(clip.duration == pytest.approx(1.0) for clip in clips)

    def test_prefers_unlabeled_videos(self, rng):
        clips = RandomAcquisition().select(videos(10), 5, 1.0, rng, exclude_vids=[0, 1, 2, 3, 4])
        assert all(clip.vid >= 5 for clip in clips)

    def test_falls_back_when_everything_excluded(self, rng):
        clips = RandomAcquisition().select(videos(3), 2, 1.0, rng, exclude_vids=[0, 1, 2])
        assert len(clips) == 2

    def test_empty_videos_rejected(self, rng):
        with pytest.raises(AcquisitionError):
            RandomAcquisition().select([], 2, 1.0, rng)

    def test_invalid_count_rejected(self, rng):
        with pytest.raises(AcquisitionError):
            RandomAcquisition().select(videos(), 0, 1.0, rng)


class TestCoresetAcquisition:
    def test_selects_diverse_points(self, rng):
        # Three tight blobs: a 3-clip batch should touch all three.
        blobs = np.vstack(
            [np.zeros((5, 2)), np.full((5, 2), 10.0), np.full((5, 2), -10.0)]
        )
        context = AcquisitionContext(
            candidates=[ClipSpec(i, 0.0, 1.0) for i in range(15)],
            candidate_features=blobs,
        )
        clips = CoresetAcquisition().select(context, 3, rng)
        groups = {clip.vid // 5 for clip in clips}
        assert groups == {0, 1, 2}

    def test_far_from_labeled_points_selected_first(self, rng):
        features = np.vstack([np.zeros((5, 2)), np.full((1, 2), 50.0)])
        context = AcquisitionContext(
            candidates=[ClipSpec(i, 0.0, 1.0) for i in range(6)],
            candidate_features=features,
            labeled_clips=[ClipSpec(99, 0.0, 1.0)],
            labeled_features=np.zeros((1, 2)),
        )
        clips = CoresetAcquisition().select(context, 1, rng)
        assert clips[0].vid == 5

    def test_count_larger_than_pool(self, rng):
        context = make_context(num_candidates=3)
        clips = CoresetAcquisition().select(context, 10, rng)
        assert len(clips) == 3

    def test_empty_pool_rejected(self, rng):
        context = AcquisitionContext(candidates=[], candidate_features=np.empty((0, 2)))
        with pytest.raises(AcquisitionError):
            CoresetAcquisition().select(context, 1, rng)

    def test_mismatched_features_rejected(self, rng):
        context = AcquisitionContext(
            candidates=[ClipSpec(0, 0.0, 1.0)], candidate_features=np.zeros((2, 3))
        )
        with pytest.raises(AcquisitionError):
            CoresetAcquisition().select(context, 1, rng)

    def test_index_init_matches_difference_tensor(self, rng):
        # The labeled-distance initialisation runs a 1-NN search through the
        # index instead of materialising the seed's (n, L, d) tensor; the
        # selections must be identical.
        feat_rng = np.random.default_rng(17)
        features = feat_rng.standard_normal((80, 6))
        labeled = feat_rng.standard_normal((12, 6))
        context = AcquisitionContext(
            candidates=[ClipSpec(i, 0.0, 1.0) for i in range(80)],
            candidate_features=features,
            labeled_clips=[ClipSpec(1000 + i, 0.0, 1.0) for i in range(12)],
            labeled_features=labeled,
        )
        clips = CoresetAcquisition().select(context, 10, rng)

        distances = np.min(
            np.linalg.norm(features[:, None, :] - labeled[None, :, :], axis=2), axis=1
        )
        chosen = []
        for __ in range(10):
            nxt = int(np.argmax(distances))
            chosen.append(nxt)
            distances = np.minimum(
                distances, np.linalg.norm(features - features[nxt], axis=1)
            )
            distances[nxt] = -np.inf
        assert [clip.vid for clip in clips] == chosen

    def test_ann_backend_selects_requested_count(self, rng):
        context = make_context(num_candidates=60, dim=8, seed=21)
        context.labeled_features = np.random.default_rng(5).standard_normal((30, 8))
        clips = CoresetAcquisition(
            index_backend="ivf-flat", index_params={"nprobe": 2}, seed=0
        ).select(context, 5, rng)
        assert len(clips) == 5


class TestClusterMarginAcquisition:
    def test_selects_requested_count_with_model(self, rng):
        context = make_context(num_candidates=30, with_model=True)
        clips = ClusterMarginAcquisition().select(context, 5, rng)
        assert len(clips) == 5
        assert len({(c.vid, c.start) for c in clips}) == 5

    def test_works_without_model(self, rng):
        context = make_context(num_candidates=15, with_model=False)
        clips = ClusterMarginAcquisition().select(context, 4, rng)
        assert len(clips) == 4

    def test_low_margin_candidates_preferred(self, rng):
        dim = 4
        train = np.vstack([np.full((20, dim), 2.0), np.full((20, dim), -2.0)])
        labels = ["pos"] * 20 + ["neg"] * 20
        model = SoftmaxRegression(["pos", "neg"]).fit(train, labels)
        # Candidate 0 sits on the decision boundary, the rest are confident.
        features = np.vstack([np.zeros((1, dim)), np.full((9, dim), 3.0)])
        context = AcquisitionContext(
            candidates=[ClipSpec(i, 0.0, 1.0) for i in range(10)],
            candidate_features=features,
            model=model,
        )
        clips = ClusterMarginAcquisition(margin_pool_multiplier=1.0).select(context, 1, rng)
        assert clips[0].vid == 0

    def test_invalid_parameters(self):
        with pytest.raises(AcquisitionError):
            ClusterMarginAcquisition(margin_pool_multiplier=0.5)
        with pytest.raises(AcquisitionError):
            ClusterMarginAcquisition(clusters_per_batch=0)

    def test_empty_pool_rejected(self, rng):
        context = AcquisitionContext(candidates=[], candidate_features=np.empty((0, 2)))
        with pytest.raises(AcquisitionError):
            ClusterMarginAcquisition().select(context, 1, rng)


class TestRareCategoryUncertainty:
    def test_requires_target_label(self, rng):
        context = make_context(with_model=True)
        with pytest.raises(AcquisitionError):
            RareCategoryUncertaintyAcquisition().select(context, 2, rng)

    def test_without_model_falls_back_to_random(self, rng):
        context = make_context(with_model=False, target="pos")
        clips = RareCategoryUncertaintyAcquisition().select(context, 3, rng)
        assert len(clips) == 3

    def test_unknown_target_rejected(self, rng):
        context = make_context(with_model=True, target="unknown", label_counts={"pos": 1})
        with pytest.raises(AcquisitionError):
            RareCategoryUncertaintyAcquisition().select(context, 2, rng)

    def test_few_positives_returns_most_confident(self, rng):
        dim = 6
        train_rng = np.random.default_rng(1)
        train = train_rng.standard_normal((60, dim)) * 3
        labels = ["pos" if row[0] > 0 else "neg" for row in train]
        model = SoftmaxRegression(["pos", "neg"]).fit(train, labels)
        candidates = [ClipSpec(i, 0.0, 1.0) for i in range(40)]
        features = train_rng.standard_normal((40, dim)) * 3
        context = AcquisitionContext(
            candidates=candidates,
            candidate_features=features,
            model=model,
            label_counts={"pos": 1, "neg": 10},
            target_label="pos",
        )
        clips = RareCategoryUncertaintyAcquisition().select(context, 5, rng)
        probabilities = model.predict_proba(features)[:, model.classes.index("pos")]
        chosen = [candidates.index(c) for c in clips]
        assert np.mean(probabilities[chosen]) >= np.mean(probabilities)

    def test_many_positives_returns_most_uncertain(self, rng):
        dim = 6
        train_rng = np.random.default_rng(2)
        train = train_rng.standard_normal((60, dim)) * 3
        labels = ["pos" if row[0] > 0 else "neg" for row in train]
        model = SoftmaxRegression(["pos", "neg"]).fit(train, labels)
        candidates = [ClipSpec(i, 0.0, 1.0) for i in range(40)]
        features = train_rng.standard_normal((40, dim)) * 3
        context = AcquisitionContext(
            candidates=candidates,
            candidate_features=features,
            model=model,
            label_counts={"pos": 20, "neg": 5},
            target_label="pos",
        )
        clips = RareCategoryUncertaintyAcquisition().select(context, 5, rng)
        probabilities = model.predict_proba(features)[:, model.classes.index("pos")]
        chosen = [candidates.index(c) for c in clips]
        assert np.mean(np.abs(probabilities[chosen] - 0.5)) <= np.mean(np.abs(probabilities - 0.5))
