"""Tests for the Active Learning Manager."""

import pytest

from repro.config import ALMConfig, FeatureSelectionConfig
from repro.exceptions import AcquisitionError
from repro.alm.manager import ActiveLearningManager
from repro.types import ClipSpec, Label

from tests.conftest import build_stack, make_corpus, make_skewed_corpus


def build_alm(corpus, alm_config=None, candidates=("r3d", "mvit", "clip"), seed=0):
    storage, feature_manager, model_manager = build_stack(corpus, seed=seed)
    alm = ActiveLearningManager(
        storage.videos,
        storage.labels,
        feature_manager,
        model_manager,
        list(candidates),
        alm_config if alm_config is not None else ALMConfig(),
        FeatureSelectionConfig(warmup_iterations=2, horizon=20),
        seed=seed,
    )
    return storage, feature_manager, model_manager, alm


def label_videos(storage, corpus, count, start=0):
    for video in corpus.videos()[start : start + count]:
        clip = ClipSpec(video.vid, 0.0, 1.0)
        storage.labels.add(Label(video.vid, 0.0, 1.0, corpus.dominant_label(clip)))


class TestFeatureSide:
    def test_initial_candidates_and_current_feature(self, small_corpus):
        __, __, __, alm = build_alm(small_corpus)
        assert alm.candidate_features() == ["r3d", "mvit", "clip"]
        assert alm.current_feature() == "r3d"
        assert not alm.feature_selection_converged
        assert alm.selected_feature is None

    def test_evaluate_features_scores_all_active_arms(self, small_corpus):
        storage, __, __, alm = build_alm(small_corpus)
        label_videos(storage, small_corpus, 15)
        scores = alm.evaluate_features()
        assert set(scores) == {"r3d", "mvit", "clip"}
        assert all(0.0 <= value <= 1.0 for value in scores.values())

    def test_evaluate_features_with_too_few_labels_scores_zero(self, small_corpus):
        storage, __, __, alm = build_alm(small_corpus)
        label_videos(storage, small_corpus, 2)
        scores = alm.evaluate_features()
        assert all(value == 0.0 for value in scores.values())

    def test_update_feature_scores_drives_bandit(self, small_corpus):
        __, __, __, alm = build_alm(small_corpus)
        for __unused in range(10):
            alm.update_feature_scores({"r3d": 0.9, "mvit": 0.85, "clip": 0.05})
        assert "clip" not in alm.candidate_features()
        assert alm.current_feature() in ("r3d", "mvit")


class TestSkewDecision:
    def test_uniform_labels_keep_random(self, small_corpus):
        storage, __, __, alm = build_alm(small_corpus)
        label_videos(storage, small_corpus, 18)  # round-robin classes: uniform
        decision = alm.decide_acquisition()
        assert not decision.is_skewed
        assert not alm.use_active_learning

    def test_skewed_labels_trigger_active_learning(self, skewed_corpus):
        storage, __, __, alm = build_alm(skewed_corpus)
        # Label many videos of the skewed corpus: counts follow 70/20/10.
        label_videos(storage, skewed_corpus, 40)
        decision = alm.decide_acquisition()
        assert decision.is_skewed
        assert alm.use_active_learning


class TestCandidatePool:
    def test_ensure_candidate_pool_extracts_unlabeled_videos(self, small_corpus):
        storage, feature_manager, __, alm = build_alm(small_corpus)
        label_videos(storage, small_corpus, 5)
        report = alm.ensure_candidate_pool("r3d", extra_videos=4)
        assert report.videos_touched == 4
        pooled_vids = set(feature_manager.vids_with_features("r3d"))
        assert not pooled_vids & set(storage.labels.labeled_vids())

    def test_ensure_candidate_pool_is_incremental(self, small_corpus):
        storage, __, __, alm = build_alm(small_corpus)
        alm.ensure_candidate_pool("r3d", extra_videos=4)
        report = alm.ensure_candidate_pool("r3d", extra_videos=4)
        assert report.videos_touched == 4  # the next four videos, not the same ones


class TestSelection:
    def test_random_selection_by_default(self, small_corpus):
        __, __, __, alm = build_alm(small_corpus)
        result = alm.select_segments(5, 1.0)
        assert result.acquisition == "random"
        assert len(result.clips) == 5
        assert all(clip.duration == pytest.approx(1.0) for clip in result.clips)

    def test_invalid_batch_size(self, small_corpus):
        __, __, __, alm = build_alm(small_corpus)
        with pytest.raises(AcquisitionError):
            alm.select_segments(0, 1.0)

    def test_forced_active_without_pool_falls_back_to_random(self, small_corpus):
        __, __, __, alm = build_alm(small_corpus)
        result = alm.select_segments(5, 1.0, use_active=True)
        assert result.acquisition == "random"

    def test_forced_active_with_pool_uses_cluster_margin(self, skewed_corpus):
        storage, __, model_manager, alm = build_alm(skewed_corpus)
        label_videos(storage, skewed_corpus, 20)
        model_manager.train("r3d")
        alm.ensure_candidate_pool("r3d", extra_videos=15)
        result = alm.select_segments(5, 1.0, use_active=True)
        assert result.acquisition == "cluster-margin"
        assert len(result.clips) == 5
        # Active selections must avoid already labeled videos.
        assert not {c.vid for c in result.clips} & set(storage.labels.labeled_vids())

    def test_coreset_configuration(self, skewed_corpus):
        config = ALMConfig(active_acquisition="coreset")
        storage, __, model_manager, alm = build_alm(skewed_corpus, alm_config=config)
        label_videos(storage, skewed_corpus, 20)
        model_manager.train("r3d")
        alm.ensure_candidate_pool("r3d", extra_videos=15)
        result = alm.select_segments(5, 1.0, use_active=True)
        assert result.acquisition == "coreset"

    def test_clips_clamped_to_requested_duration(self, skewed_corpus):
        storage, __, model_manager, alm = build_alm(skewed_corpus)
        label_videos(storage, skewed_corpus, 20)
        model_manager.train("r3d")
        alm.ensure_candidate_pool("r3d", extra_videos=15)
        result = alm.select_segments(5, 1.0, use_active=True)
        assert all(clip.duration <= 1.0 + 1e-6 for clip in result.clips)

    def test_targeted_selection_uses_rare_category(self, skewed_corpus):
        storage, __, model_manager, alm = build_alm(skewed_corpus)
        label_videos(storage, skewed_corpus, 20)
        model_manager.train("r3d")
        alm.ensure_candidate_pool("r3d", extra_videos=15)
        result = alm.select_segments(5, 1.0, target_label="rare")
        assert result.acquisition == "rare-category-uncertainty"
        assert len(result.clips) == 5

    def test_targeted_selection_without_pool_falls_back(self, small_corpus):
        __, __, __, alm = build_alm(small_corpus)
        result = alm.select_segments(3, 1.0, target_label="walk")
        assert result.acquisition == "random"

    def test_selection_records_skew_decision(self, small_corpus):
        storage, __, __, alm = build_alm(small_corpus)
        label_videos(storage, small_corpus, 12)
        result = alm.select_segments(5, 1.0)
        assert result.skew is not None
        assert result.feature_name == alm.current_feature()

    def test_label_diversity_passthrough(self, skewed_corpus):
        storage, __, __, alm = build_alm(skewed_corpus)
        label_videos(storage, skewed_corpus, 30)
        assert alm.label_diversity() == storage.labels.diversity_smax()


class TestEvaluateFeaturesErrorHandling:
    def test_insufficient_labels_scores_zero(self, small_corpus):
        storage, __, model_manager, alm = build_alm(small_corpus)
        label_videos(storage, small_corpus, 2)
        scores = alm.evaluate_features()
        assert set(scores.values()) == {0.0}

    def test_unexpected_error_propagates(self, small_corpus, monkeypatch):
        """A real defect (e.g. a shape bug) must not be masked as a 0.0 score."""
        storage, __, model_manager, alm = build_alm(small_corpus)
        label_videos(storage, small_corpus, 9)

        def broken(*args, **kwargs):
            raise ValueError("shape bug")

        monkeypatch.setattr(model_manager, "cross_validate", broken)
        with pytest.raises(ValueError, match="shape bug"):
            alm.evaluate_features()


class TestCandidateContextCache:
    def test_context_reused_when_nothing_changed(self, small_corpus):
        storage, feature_manager, __, alm = build_alm(small_corpus)
        label_videos(storage, small_corpus, 6)
        feature_manager.ensure_video_features("r3d", storage.videos.vids()[:10])
        first = alm._candidate_context("r3d", None)
        second = alm._candidate_context("r3d", None)
        assert second is first

    def test_target_label_swapped_on_cache_hit(self, small_corpus):
        storage, feature_manager, __, alm = build_alm(small_corpus)
        label_videos(storage, small_corpus, 6)
        feature_manager.ensure_video_features("r3d", storage.videos.vids()[:10])
        base = alm._candidate_context("r3d", None)
        targeted = alm._candidate_context("r3d", "walk")
        assert targeted.target_label == "walk"
        assert targeted.candidates is base.candidates

    def test_new_label_invalidates_context(self, small_corpus):
        storage, feature_manager, __, alm = build_alm(small_corpus)
        label_videos(storage, small_corpus, 6)
        feature_manager.ensure_video_features("r3d", storage.videos.vids()[:10])
        first = alm._candidate_context("r3d", None)
        label_videos(storage, small_corpus, 1, start=6)
        second = alm._candidate_context("r3d", None)
        assert second is not first

    def test_feature_write_invalidates_context(self, small_corpus):
        storage, feature_manager, __, alm = build_alm(small_corpus)
        label_videos(storage, small_corpus, 6)
        feature_manager.ensure_video_features("r3d", storage.videos.vids()[:10])
        first = alm._candidate_context("r3d", None)
        feature_manager.ensure_video_features("r3d", storage.videos.vids()[10:12])
        second = alm._candidate_context("r3d", None)
        assert second is not first
        assert len(second.candidates) > len(first.candidates)

    def test_new_model_invalidates_context(self, small_corpus):
        storage, feature_manager, model_manager, alm = build_alm(small_corpus)
        label_videos(storage, small_corpus, 9)
        feature_manager.ensure_video_features("r3d", storage.videos.vids()[:10])
        first = alm._candidate_context("r3d", None)
        assert first.model is None
        model_manager.train("r3d")
        second = alm._candidate_context("r3d", None)
        assert second is not first
        assert second.model is not None
