"""Tests for EWMA smoothing and the rising-bandit feature selector."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import FeatureSelectionConfig
from repro.exceptions import FeatureSelectionError
from repro.alm.bandit import RisingBanditSelector
from repro.alm.smoothing import EWMASmoother, ewma


class TestEWMAFunction:
    def test_constant_series_unchanged(self):
        np.testing.assert_allclose(ewma([3.0, 3.0, 3.0], span=5), [3.0, 3.0, 3.0])

    def test_first_value_passthrough(self):
        assert ewma([7.0], span=3)[0] == 7.0

    def test_smoothing_reduces_oscillation(self):
        raw = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0]
        smoothed = ewma(raw, span=5)
        assert np.std(smoothed[2:]) < np.std(raw[2:])

    def test_empty_series(self):
        assert ewma([], span=3).size == 0

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            ewma([1.0], span=0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50))
    def test_smoothed_values_within_observed_range(self, values):
        smoothed = ewma(values, span=5)
        assert smoothed.min() >= min(values) - 1e-9
        assert smoothed.max() <= max(values) + 1e-9


class TestEWMASmoother:
    def test_matches_functional_form(self):
        values = [0.1, 0.4, 0.2, 0.8, 0.6]
        smoother = EWMASmoother(span=5)
        for value in values:
            smoother.update(value)
        np.testing.assert_allclose(smoother.history, ewma(values, span=5))

    def test_current_before_updates(self):
        assert EWMASmoother(span=3).current == 0.0

    def test_update_many(self):
        smoother = EWMASmoother(span=3)
        final = smoother.update_many([1.0, 2.0, 3.0])
        assert final == smoother.current
        assert len(smoother) == 3

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            EWMASmoother(0)


def config(horizon=50, warmup=3, span=3, window=3):
    return FeatureSelectionConfig(
        smoothing_span=span,
        slope_window=window,
        horizon=horizon,
        warmup_iterations=warmup,
    )


class TestRisingBandit:
    def test_requires_candidates(self):
        with pytest.raises(FeatureSelectionError):
            RisingBanditSelector([])

    def test_initial_state(self):
        bandit = RisingBanditSelector(["a", "b", "c"], config())
        assert bandit.candidates() == ["a", "b", "c"]
        assert bandit.active_arms() == ["a", "b", "c"]
        assert not bandit.converged
        assert bandit.selected is None
        assert bandit.current_best() == "a"

    def test_unknown_arm_history_raises(self):
        bandit = RisingBanditSelector(["a"], config())
        with pytest.raises(FeatureSelectionError):
            bandit.history("z")

    def test_current_best_tracks_highest_smoothed_score(self):
        bandit = RisingBanditSelector(["a", "b"], config())
        bandit.update({"a": 0.2, "b": 0.6})
        assert bandit.current_best() == "b"
        bandit.update({"a": 0.9, "b": 0.1})
        bandit.update({"a": 0.9, "b": 0.1})
        bandit.update({"a": 0.9, "b": 0.1})
        assert bandit.current_best() == "a"

    def test_no_elimination_during_warmup(self):
        bandit = RisingBanditSelector(["good", "bad"], config(warmup=5))
        for __ in range(5):
            eliminated = bandit.update({"good": 0.9, "bad": 0.05})
            assert eliminated == []
        assert bandit.active_arms() == ["good", "bad"]

    def test_dominated_arm_eliminated_after_warmup(self):
        bandit = RisingBanditSelector(["good", "bad"], config(horizon=10, warmup=3))
        eliminated_any = []
        for step in range(12):
            eliminated_any += bandit.update({"good": 0.8 + 0.01 * step, "bad": 0.05})
        assert "bad" in eliminated_any
        assert bandit.converged
        assert bandit.selected == "good"

    def test_flat_bad_arm_with_rising_good_arm(self):
        bandit = RisingBanditSelector(["rising", "flat"], config(horizon=15, warmup=3))
        for step in range(15):
            bandit.update({"rising": min(0.9, 0.2 + 0.05 * step), "flat": 0.1})
        assert bandit.selected == "rising"

    def test_similar_arms_not_eliminated(self):
        bandit = RisingBanditSelector(["a", "b"], config(horizon=20, warmup=3))
        for __ in range(10):
            bandit.update({"a": 0.52, "b": 0.50})
        # Upper bounds stay above the best lower bound when arms are close.
        assert len(bandit.active_arms()) >= 1

    def test_elimination_never_removes_last_arm(self):
        bandit = RisingBanditSelector(["a", "b", "c"], config(horizon=5, warmup=1))
        for __ in range(10):
            bandit.update({name: 0.0 for name in bandit.active_arms()})
        assert len(bandit.active_arms()) >= 1

    def test_eliminated_arm_scores_ignored(self):
        bandit = RisingBanditSelector(["good", "bad"], config(horizon=8, warmup=2))
        for __ in range(10):
            bandit.update({"good": 0.9, "bad": 0.01})
        history_length = len(bandit.history("bad"))
        bandit.update({"good": 0.9, "bad": 0.99})
        assert len(bandit.history("bad")) == history_length

    def test_bound_trace_collected(self):
        bandit = RisingBanditSelector(["a", "b"], config())
        bandit.update({"a": 0.3, "b": 0.4})
        bandit.update({"a": 0.35, "b": 0.45})
        trace = bandit.bound_trace()
        assert {snapshot.arm for snapshot in trace} == {"a", "b"}
        assert all(snapshot.upper_bound >= snapshot.lower_bound - 1e-12 for snapshot in trace)

    def test_elimination_steps_recorded(self):
        bandit = RisingBanditSelector(["good", "bad"], config(horizon=8, warmup=2))
        for __ in range(10):
            bandit.update({"good": 0.9, "bad": 0.01})
        steps = bandit.elimination_steps()
        assert steps["good"] is None
        assert steps["bad"] is not None and steps["bad"] > 2

    def test_larger_horizon_eliminates_more_slowly(self):
        def convergence_step(horizon):
            bandit = RisingBanditSelector(["good", "ok"], config(horizon=horizon, warmup=2))
            for step in range(60):
                bandit.update({"good": 0.7 + 0.002 * step, "ok": 0.4 + 0.002 * step})
                if bandit.converged:
                    return step + 1
            return 61

        assert convergence_step(10) <= convergence_step(200)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=5, max_size=30))
    def test_active_arms_always_nonempty(self, scores):
        bandit = RisingBanditSelector(["a", "b", "c"], config(horizon=10, warmup=2))
        for value in scores:
            bandit.update({"a": value, "b": value * 0.5, "c": value * 0.25})
        assert len(bandit.active_arms()) >= 1
        assert bandit.current_best() in bandit.candidates()
