"""Tests for extractor frame-pooling behaviour and quality monotonicity."""

import numpy as np
import pytest

from repro.features.pretrained import SimulatedExtractor, PRETRAINED_SPECS, build_extractor
from repro.types import ClipSpec
from repro.video.activity import ActivitySegment, ActivityTrack
from repro.video.corpus import VideoCorpus
from repro.video.decoder import Decoder


@pytest.fixture
def corpus():
    corpus = VideoCorpus(["a", "b"], latent_dim=32, seed=9, temporal_noise=0.8)
    for i in range(16):
        activity = "a" if i % 2 == 0 else "b"
        corpus.add_video(ActivityTrack(10.0, [ActivitySegment(0.0, 10.0, activity)]))
    return corpus


@pytest.fixture
def decoder(corpus):
    return Decoder(corpus)


class TestPoolingModes:
    def test_invalid_pooling_rejected(self):
        with pytest.raises(ValueError):
            SimulatedExtractor(PRETRAINED_SPECS["r3d"], latent_dim=32, signal_quality=0.5,
                               pooling="median")

    def test_clip_uses_middle_frame_only(self, corpus, decoder):
        """CLIP's single-frame embedding ignores every frame but the middle one."""
        extractor = build_extractor("clip", corpus.latent_dim, 0.9, seed=0)
        decoded = decoder.decode(ClipSpec(0, 0.0, 1.0))
        vector = extractor.extract(decoded)
        # Re-extract from a synthetic DecodedClip whose non-middle frames are
        # replaced by garbage: the middle-frame extractor must be unaffected.
        from repro.video.decoder import DecodedClip

        corrupted_frames = decoded.frames.copy()
        middle = decoded.num_frames // 2
        corrupted_frames[: middle] = 1e3
        corrupted_frames[middle + 1:] = -1e3
        corrupted = DecodedClip(clip=decoded.clip, frames=corrupted_frames, fps=decoded.fps)
        np.testing.assert_allclose(extractor.extract(corrupted), vector)

    def test_video_models_average_over_frames(self, corpus, decoder):
        """Mean-pooling extractors do react to changes away from the middle frame."""
        extractor = build_extractor("r3d", corpus.latent_dim, 0.9, seed=0)
        decoded = decoder.decode(ClipSpec(0, 0.0, 1.0))
        from repro.video.decoder import DecodedClip

        corrupted_frames = decoded.frames.copy()
        corrupted_frames[0] += 50.0
        corrupted = DecodedClip(clip=decoded.clip, frames=corrupted_frames, fps=decoded.fps)
        assert not np.allclose(extractor.extract(corrupted), extractor.extract(decoded))

    def test_pooled_clip_differs_from_single_frame_clip(self, corpus, decoder):
        single = build_extractor("clip", corpus.latent_dim, 0.7, seed=0)
        pooled = build_extractor("clip_pooled", corpus.latent_dim, 0.7, seed=0)
        decoded = decoder.decode(ClipSpec(0, 0.0, 1.0))
        assert not np.allclose(single.extract(decoded), pooled.extract(decoded))

    def test_embedding_norm_is_scaled_to_sqrt_dim(self, corpus, decoder):
        extractor = build_extractor("mvit", corpus.latent_dim, 0.6, seed=0)
        vector = extractor.extract(decoder.decode(ClipSpec(0, 0.0, 1.0)))
        assert np.linalg.norm(vector) == pytest.approx(np.sqrt(extractor.dim))


class TestQualityMonotonicity:
    def _separation(self, extractor, corpus, decoder):
        by_class = {}
        for video in corpus.videos():
            label = video.track.activities()[0]
            vector = extractor.extract(decoder.decode(ClipSpec(video.vid, 0.0, 1.0)))
            by_class.setdefault(label, []).append(vector)
        centroids = {k: np.mean(v, axis=0) for k, v in by_class.items()}
        within = np.mean([
            np.linalg.norm(vec - centroids[label])
            for label, vectors in by_class.items()
            for vec in vectors
        ])
        between = np.linalg.norm(centroids["a"] - centroids["b"])
        return between / within

    def test_higher_quality_gives_better_class_separation(self, corpus, decoder):
        separations = [
            self._separation(build_extractor("mvit", corpus.latent_dim, q, seed=1), corpus, decoder)
            for q in (0.1, 0.4, 0.8)
        ]
        assert separations[0] < separations[1] < separations[2]

    def test_zero_quality_has_no_class_signal(self, corpus, decoder):
        separation = self._separation(
            build_extractor("random", corpus.latent_dim, 0.0, seed=1), corpus, decoder
        )
        # between/within ratio near or below ~1 means centroids are not separated
        # beyond the within-class spread.
        assert separation < 1.0
