"""Tests for the extraction pipeline and Feature Manager."""

import numpy as np
import pytest

from repro.features.feature_manager import FeatureManager
from repro.features.pipeline import FeatureExtractionPipeline
from repro.features.pretrained import build_default_registry
from repro.storage.feature_store import FeatureStore
from repro.storage.video_store import VideoStore
from repro.types import ClipSpec
from repro.video.decoder import Decoder
from repro.video.sampler import ClipSampler

from tests.conftest import make_corpus


@pytest.fixture
def setup():
    corpus = make_corpus(num_videos=12)
    videos = VideoStore()
    videos.add_records(corpus.records())
    registry = build_default_registry(corpus.latent_dim, {"r3d": 0.5, "clip": 0.3}, seed=0)
    manager = FeatureManager(registry, Decoder(corpus), videos, FeatureStore(), ClipSampler())
    return corpus, videos, registry, manager


class TestPipeline:
    def test_run_extracts_one_vector_per_clip(self, setup):
        corpus, __, registry, manager = setup
        pipeline = FeatureExtractionPipeline(Decoder(corpus))
        clips = [ClipSpec(0, 0.0, 1.0), ClipSpec(1, 0.0, 1.0)]
        features = pipeline.run(registry.get("r3d"), clips)
        assert len(features) == 2
        assert all(f.fid == "r3d" for f in features)
        assert features[0].dim == 512

    def test_run_empty_batch_is_noop(self, setup):
        corpus, __, registry, __ = setup
        pipeline = FeatureExtractionPipeline(Decoder(corpus))
        assert pipeline.run(registry.get("r3d"), []) == []
        assert pipeline.stats.pipelines_created == 0

    def test_stats_accumulate(self, setup):
        corpus, __, registry, __ = setup
        pipeline = FeatureExtractionPipeline(Decoder(corpus))
        pipeline.run(registry.get("r3d"), [ClipSpec(0, 0.0, 1.0)])
        pipeline.run(registry.get("clip"), [ClipSpec(0, 0.0, 1.0), ClipSpec(1, 0.0, 1.0)])
        assert pipeline.stats.pipelines_created == 2
        assert pipeline.stats.clips_processed == 3
        assert pipeline.stats.clips_by_extractor == {"r3d": 1, "clip": 2}


class TestEnsureClipFeatures:
    def test_extracts_missing_clips(self, setup):
        __, __, __, manager = setup
        clips = [ClipSpec(0, 0.5, 1.5), ClipSpec(1, 2.0, 3.0)]
        report = manager.ensure_clip_features("r3d", clips)
        assert report.extracted_clips == 2
        assert report.videos_touched == 2
        assert manager.store.count("r3d") == 2

    def test_second_call_is_incremental(self, setup):
        __, __, __, manager = setup
        clips = [ClipSpec(0, 0.5, 1.5)]
        manager.ensure_clip_features("r3d", clips)
        report = manager.ensure_clip_features("r3d", clips)
        assert report.extracted_clips == 0
        assert report.skipped_clips == 1

    def test_nearby_clip_covered_by_existing_window(self, setup):
        __, __, __, manager = setup
        manager.ensure_clip_features("r3d", [ClipSpec(0, 0.2, 1.2)])
        count_before = manager.store.count("r3d")
        # A clip whose midpoint falls inside the already-extracted window.
        report = manager.ensure_clip_features("r3d", [ClipSpec(0, 0.4, 1.0)])
        assert report.extracted_clips == 0
        assert manager.store.count("r3d") == count_before


class TestEnsureVideoFeatures:
    def test_extracts_window_grid(self, setup):
        corpus, videos, __, manager = setup
        report = manager.ensure_video_features("r3d", [0, 1])
        windows_per_video = len(manager.sampler.feature_windows(videos.get(0)))
        assert report.videos_touched == 2
        assert manager.store.count("r3d") == 2 * windows_per_video

    def test_videos_with_features_skipped(self, setup):
        __, __, __, manager = setup
        manager.ensure_video_features("r3d", [0])
        report = manager.ensure_video_features("r3d", [0, 1])
        assert report.videos_touched == 1

    def test_extract_all_covers_whole_corpus(self, setup):
        corpus, __, __, manager = setup
        report = manager.extract_all("clip")
        assert report.videos_touched == len(corpus)
        assert set(manager.vids_with_features("clip")) == set(corpus.vids())


class TestAccess:
    def test_matrix_extracts_on_demand(self, setup):
        __, __, __, manager = setup
        clips = [ClipSpec(0, 0.0, 1.0), ClipSpec(2, 4.0, 5.0)]
        matrix = manager.matrix("r3d", clips)
        assert matrix.shape == (2, 512)
        assert np.all(np.isfinite(matrix))

    def test_candidate_pool_returns_all_vectors(self, setup):
        __, __, __, manager = setup
        manager.ensure_video_features("r3d", [0, 1, 2])
        clips, matrix = manager.candidate_pool("r3d")
        assert len(clips) == matrix.shape[0]
        assert matrix.shape[0] > 0

    def test_feature_vectors_for_video(self, setup):
        __, __, __, manager = setup
        manager.ensure_video_features("r3d", [3])
        vectors = manager.feature_vectors_for("r3d", 3)
        assert vectors
        assert all(v.vid == 3 and v.fid == "r3d" for v in vectors)

    def test_get_many_matches_per_clip_get(self, setup):
        __, __, __, manager = setup
        manager.ensure_video_features("r3d", [0, 1])
        clips = manager.store.clips_for("r3d", 0) + manager.store.clips_for("r3d", 1)
        batched = manager.get_many("r3d", clips)
        assert batched.shape == (len(clips), 512)
        for row, clip in zip(batched, clips):
            np.testing.assert_array_equal(row, manager.store.get("r3d", clip))

    def test_has_many_masks_extracted_clips(self, setup):
        __, __, __, manager = setup
        stored = ClipSpec(0, 0.0, 1.0)
        manager.ensure_clip_features("r3d", [stored])
        window = manager.store.clips_for("r3d", 0)[0]
        mask = manager.has_many("r3d", [window, ClipSpec(5, 0.0, 1.0)])
        assert mask.tolist() == [True, False]

    def test_candidate_pool_columns_align_with_pool(self, setup):
        __, __, __, manager = setup
        manager.ensure_video_features("r3d", [0, 1])
        clips, matrix = manager.candidate_pool("r3d")
        vids, starts, ends, vectors = manager.candidate_pool_columns("r3d")
        assert list(vids) == [c.vid for c in clips]
        assert list(starts) == [c.start for c in clips]
        assert list(ends) == [c.end for c in clips]
        np.testing.assert_array_equal(vectors, matrix)

    def test_candidate_pool_columns_unknown_extractor_is_empty(self, setup):
        __, __, __, manager = setup
        vids, starts, ends, vectors = manager.candidate_pool_columns("r3d")
        assert len(vids) == len(starts) == len(ends) == 0
        assert vectors.shape == (0, 0)

    def test_extractor_names(self, setup):
        __, __, __, manager = setup
        assert "r3d" in manager.extractor_names()
        assert manager.extractor("r3d").name == "r3d"

    def test_pipeline_stats_exposed(self, setup):
        __, __, __, manager = setup
        manager.ensure_video_features("r3d", [0])
        assert manager.pipeline_stats.pipelines_created >= 1
