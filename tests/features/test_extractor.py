"""Tests for extractor specs, registry, and the simulated pretrained extractors."""

import numpy as np
import pytest

from repro.exceptions import UnknownExtractorError
from repro.features.extractor import ExtractorRegistry, ExtractorSpec
from repro.features.pretrained import (
    DEFAULT_EXTRACTOR_NAMES,
    PRETRAINED_SPECS,
    ConcatExtractor,
    build_default_registry,
    build_extractor,
)
from repro.types import ClipSpec
from repro.video.activity import ActivitySegment, ActivityTrack
from repro.video.corpus import VideoCorpus
from repro.video.decoder import Decoder


@pytest.fixture
def corpus():
    corpus = VideoCorpus(["a", "b", "c"], latent_dim=32, seed=4)
    for i in range(12):
        activity = ["a", "b", "c"][i % 3]
        corpus.add_video(ActivityTrack(10.0, [ActivitySegment(0.0, 10.0, activity)]))
    return corpus


@pytest.fixture
def decoder(corpus):
    return Decoder(corpus)


class TestExtractorSpec:
    def test_table3_specs_present(self):
        assert set(PRETRAINED_SPECS) == set(DEFAULT_EXTRACTOR_NAMES)
        assert PRETRAINED_SPECS["r3d"].throughput == 4.03
        assert PRETRAINED_SPECS["mvit"].dim == 768
        assert PRETRAINED_SPECS["clip"].input_type == "image"
        assert PRETRAINED_SPECS["random"].pretrained_on == "None"

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            ExtractorSpec("x", "audio", "arch", "corpus", 8, 1.0)
        with pytest.raises(ValueError):
            ExtractorSpec("x", "video", "arch", "corpus", 0, 1.0)
        with pytest.raises(ValueError):
            ExtractorSpec("x", "video", "arch", "corpus", 8, 0.0)


class TestRegistry:
    def test_register_and_get(self, corpus):
        registry = ExtractorRegistry([build_extractor("r3d", corpus.latent_dim, 0.5)])
        assert "r3d" in registry
        assert registry.get("r3d").name == "r3d"
        assert len(registry) == 1

    def test_unknown_extractor_raises(self):
        with pytest.raises(UnknownExtractorError):
            ExtractorRegistry().get("nope")

    def test_names_and_specs_ordered(self, corpus):
        registry = build_default_registry(corpus.latent_dim, {}, seed=0)
        assert registry.names() == list(DEFAULT_EXTRACTOR_NAMES)
        assert [spec.name for spec in registry.specs()] == list(DEFAULT_EXTRACTOR_NAMES)

    def test_include_concat(self, corpus):
        registry = build_default_registry(corpus.latent_dim, {}, include_concat=True)
        assert "concat" in registry
        assert registry.get("concat").dim == sum(
            PRETRAINED_SPECS[name].dim for name in DEFAULT_EXTRACTOR_NAMES
        )

    def test_reregistering_replaces(self, corpus):
        registry = ExtractorRegistry()
        registry.register(build_extractor("r3d", corpus.latent_dim, 0.2))
        registry.register(build_extractor("r3d", corpus.latent_dim, 0.8))
        assert registry.get("r3d").signal_quality == 0.8
        assert len(registry) == 1


class TestSimulatedExtractor:
    def test_output_dimension_matches_spec(self, corpus, decoder):
        for name in DEFAULT_EXTRACTOR_NAMES:
            extractor = build_extractor(name, corpus.latent_dim, 0.5)
            vector = extractor.extract(decoder.decode(ClipSpec(0, 0.0, 1.0)))
            assert vector.shape == (PRETRAINED_SPECS[name].dim,)

    def test_extraction_is_deterministic(self, corpus, decoder):
        extractor = build_extractor("mvit", corpus.latent_dim, 0.5, seed=1)
        decoded = decoder.decode(ClipSpec(0, 1.0, 2.0))
        np.testing.assert_allclose(extractor.extract(decoded), extractor.extract(decoded))

    def test_invalid_quality_rejected(self, corpus):
        with pytest.raises(ValueError):
            build_extractor("r3d", corpus.latent_dim, 1.5)

    def test_unknown_name_rejected(self, corpus):
        with pytest.raises(ValueError):
            build_extractor("i3d", corpus.latent_dim, 0.5)

    def test_random_extractor_forced_to_zero_quality(self, corpus):
        registry = build_default_registry(corpus.latent_dim, {"random": 0.9})
        assert registry.get("random").signal_quality == 0.0

    def test_high_quality_separates_classes_better_than_zero_quality(self, corpus, decoder):
        good = build_extractor("r3d", corpus.latent_dim, 0.8, seed=0)
        bad = build_extractor("random", corpus.latent_dim, 0.0, seed=0)

        def class_separation(extractor):
            by_class = {}
            for video in corpus.videos():
                label = video.track.activities()[0]
                vector = extractor.extract(decoder.decode(ClipSpec(video.vid, 0.0, 1.0)))
                by_class.setdefault(label, []).append(vector)
            centroids = {k: np.mean(v, axis=0) for k, v in by_class.items()}
            within = np.mean(
                [
                    np.linalg.norm(vec - centroids[label])
                    for label, vectors in by_class.items()
                    for vec in vectors
                ]
            )
            names = list(centroids)
            between = np.mean(
                [
                    np.linalg.norm(centroids[a] - centroids[b])
                    for i, a in enumerate(names)
                    for b in names[i + 1:]
                ]
            )
            return between / within

        assert class_separation(good) > class_separation(bad)

    def test_batch_extraction_matches_individual(self, corpus, decoder):
        extractor = build_extractor("clip", corpus.latent_dim, 0.5)
        decoded = [decoder.decode(ClipSpec(v, 0.0, 1.0)) for v in range(3)]
        batch = extractor.extract_batch(decoded)
        assert batch.shape == (3, extractor.dim)
        np.testing.assert_allclose(batch[1], extractor.extract(decoded[1]))

    def test_batch_extraction_empty(self, corpus):
        extractor = build_extractor("clip", corpus.latent_dim, 0.5)
        assert extractor.extract_batch([]).shape == (0, extractor.dim)


class TestConcatExtractor:
    def test_concat_dimension_is_sum(self, corpus, decoder):
        components = [
            build_extractor("r3d", corpus.latent_dim, 0.5),
            build_extractor("clip", corpus.latent_dim, 0.5),
        ]
        concat = ConcatExtractor(components)
        vector = concat.extract(decoder.decode(ClipSpec(0, 0.0, 1.0)))
        assert vector.shape == (1024,)
        assert concat.components == components

    def test_concat_requires_components(self):
        with pytest.raises(ValueError):
            ConcatExtractor([])

    def test_concat_throughput_slower_than_any_component(self, corpus):
        components = [
            build_extractor("r3d", corpus.latent_dim, 0.5),
            build_extractor("mvit", corpus.latent_dim, 0.5),
        ]
        concat = ConcatExtractor(components)
        assert concat.spec.throughput < min(c.spec.throughput for c in components)
