"""Tests for Zipf utilities, the synthetic dataset generator, and the catalog."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.catalog import DATASET_NAMES, all_dataset_specs, build_dataset, dataset_spec
from repro.datasets.synthetic import DatasetSpec, generate_dataset
from repro.datasets.zipf import imbalance_ratio, zipf_counts, zipf_probabilities
from repro.exceptions import DatasetError


class TestZipf:
    def test_probabilities_sum_to_one_and_decrease(self):
        probabilities = zipf_probabilities(10, exponent=2.0)
        assert probabilities.sum() == pytest.approx(1.0)
        assert all(probabilities[i] >= probabilities[i + 1] for i in range(9))

    def test_zero_exponent_is_uniform(self):
        probabilities = zipf_probabilities(5, exponent=0.0)
        np.testing.assert_allclose(probabilities, 0.2)

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            zipf_probabilities(0)
        with pytest.raises(DatasetError):
            zipf_probabilities(5, exponent=-1.0)

    def test_counts_sum_to_total_and_respect_minimum(self):
        counts = zipf_counts(20, 260, exponent=2.0, min_count=2)
        assert sum(counts) == 260
        assert min(counts) >= 2
        assert counts[0] == max(counts)

    def test_counts_total_too_small(self):
        with pytest.raises(DatasetError):
            zipf_counts(10, 5, min_count=1)

    def test_imbalance_ratio(self):
        assert imbalance_ratio([100, 10]) == pytest.approx(10.0)
        with pytest.raises(DatasetError):
            imbalance_ratio([])

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=60, max_value=500),
        st.floats(min_value=0.0, max_value=3.0),
    )
    def test_counts_always_sum_to_total(self, k, total, exponent):
        counts = zipf_counts(k, total, exponent=exponent, min_count=1)
        assert sum(counts) == total
        assert len(counts) == k


class TestDatasetSpecValidation:
    def test_probabilities_must_match_classes(self):
        with pytest.raises(DatasetError):
            DatasetSpec("x", ("a", "b"), (1.0,), 10, 5)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(DatasetError):
            DatasetSpec("x", ("a", "b"), (0.6, 0.6), 10, 5)

    def test_positive_sizes_required(self):
        with pytest.raises(DatasetError):
            DatasetSpec("x", ("a",), (1.0,), 0, 5)

    def test_co_occurrence_bounds(self):
        with pytest.raises(DatasetError):
            DatasetSpec("x", ("a", "b"), (0.5, 0.5), 10, 5, co_occurrence_rate=1.5)


class TestGenerateDataset:
    def spec(self):
        return DatasetSpec(
            name="toy",
            class_names=("a", "b", "c"),
            class_probabilities=(0.6, 0.3, 0.1),
            num_train_videos=40,
            num_eval_videos=20,
            video_duration=6.0,
            skewed=True,
        )

    def test_corpus_sizes_match_spec(self):
        dataset = generate_dataset(self.spec(), seed=0)
        assert len(dataset.train_corpus) == 40
        assert len(dataset.eval_corpus) == 20

    def test_every_class_present_in_training(self):
        dataset = generate_dataset(self.spec(), seed=0)
        counts = dataset.train_class_counts()
        assert all(counts[name] >= 1 for name in ("a", "b", "c"))

    def test_train_distribution_follows_probabilities(self):
        dataset = generate_dataset(self.spec(), seed=1)
        counts = dataset.train_class_counts()
        assert counts["a"] > counts["c"]

    def test_eval_corpus_is_balanced(self):
        dataset = generate_dataset(self.spec(), seed=0)
        clips, labels = dataset.eval_examples()
        assert len(clips) == len(labels) == 20
        counts = {name: labels.count(name) for name in set(labels)}
        assert max(counts.values()) - min(counts.values()) <= 3

    def test_generation_is_deterministic(self):
        first = generate_dataset(self.spec(), seed=7)
        second = generate_dataset(self.spec(), seed=7)
        assert first.train_class_counts() == second.train_class_counts()

    def test_different_seeds_differ(self):
        first = generate_dataset(self.spec(), seed=1)
        second = generate_dataset(self.spec(), seed=2)
        assert first.train_class_counts() != second.train_class_counts()

    def test_describe_row(self):
        dataset = generate_dataset(self.spec(), seed=0)
        row = dataset.describe()
        assert row["dataset"] == "toy"
        assert row["num_classes"] == 3
        assert row["skew"] == "Skewed"


class TestCatalog:
    def test_all_six_datasets_defined(self):
        assert set(DATASET_NAMES) == {"deer", "k20", "k20-skew", "charades", "bears", "bdd"}
        assert len(all_dataset_specs()) == 6

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            dataset_spec("imagenet")
        with pytest.raises(DatasetError):
            dataset_spec("deer", scale="huge")

    def test_class_counts_match_table2(self):
        assert len(dataset_spec("deer").class_names) == 9
        assert len(dataset_spec("k20").class_names) == 20
        assert len(dataset_spec("k20-skew").class_names) == 20
        assert len(dataset_spec("charades").class_names) == 33
        assert len(dataset_spec("bears").class_names) == 2
        assert len(dataset_spec("bdd").class_names) == 6

    def test_skew_flags_match_table2(self):
        assert dataset_spec("deer").skewed
        assert not dataset_spec("k20").skewed
        assert dataset_spec("k20-skew").skewed
        assert not dataset_spec("bears").skewed
        assert dataset_spec("bdd").skewed

    def test_paper_scale_sizes(self):
        spec = dataset_spec("k20", scale="paper")
        assert spec.num_train_videos == 13326
        assert spec.num_eval_videos == 976

    def test_correct_features_per_dataset(self):
        assert set(dataset_spec("deer").correct_features) == {"r3d", "mvit"}
        assert dataset_spec("k20-skew").correct_features == ("mvit",)
        assert set(dataset_spec("bdd").correct_features) == {"clip", "clip_pooled"}

    def test_random_feature_never_listed_as_correct(self):
        for spec in all_dataset_specs():
            assert "random" not in spec.correct_features
            assert "random" not in spec.feature_qualities

    def test_build_dataset_deer_skew_towards_bedded(self):
        dataset = build_dataset("deer", seed=0)
        counts = dataset.train_class_counts()
        assert counts["bedded"] == max(counts.values())

    def test_build_dataset_k20_uniformity(self):
        dataset = build_dataset("k20", seed=0)
        counts = list(dataset.train_class_counts().values())
        assert max(counts) <= 3 * max(1, min(counts))

    def test_k20_skew_is_zipfian(self):
        dataset = build_dataset("k20-skew", seed=0)
        counts = sorted(dataset.train_class_counts().values(), reverse=True)
        assert counts[0] > 5 * max(1, counts[-1])
