"""Unit tests for the write-ahead journal: framing, torn tails, corruption."""

from __future__ import annotations

import pytest

from repro.exceptions import StorageError
from repro.storage.durability import JournalWriter, read_journal


def write_records(path, records):
    writer = JournalWriter(path)
    for record in records:
        writer.append(record)
    writer.commit()
    writer.close()


class TestJournalRoundtrip:
    def test_append_commit_read(self, tmp_path):
        path = tmp_path / "journal.log"
        records = [{"type": "label", "revision": i, "value": i * 0.1} for i in range(5)]
        write_records(path, records)
        result = read_journal(path)
        assert result.records == records
        assert result.truncated_bytes == 0

    def test_missing_file_reads_empty(self, tmp_path):
        result = read_journal(tmp_path / "absent.log")
        assert result.records == []
        assert result.truncated_bytes == 0

    def test_append_without_commit_is_not_durable(self, tmp_path):
        path = tmp_path / "journal.log"
        writer = JournalWriter(path)
        writer.append({"type": "label", "revision": 1})
        assert writer.pending_records == 1
        # Nothing on disk yet: the un-committed tail is exactly what a crash loses.
        assert read_journal(path).records == []
        writer.commit()
        assert writer.pending_records == 0
        assert len(read_journal(path).records) == 1
        writer.close()

    def test_floats_roundtrip_exactly(self, tmp_path):
        path = tmp_path / "journal.log"
        value = 0.1 + 0.2  # not representable prettily; must survive bit-exactly
        write_records(path, [{"value": value}])
        assert read_journal(path).records[0]["value"] == value

    def test_commits_accumulate_across_writers(self, tmp_path):
        path = tmp_path / "journal.log"
        write_records(path, [{"n": 1}])
        write_records(path, [{"n": 2}])
        assert [r["n"] for r in read_journal(path).records] == [1, 2]


class TestConcurrency:
    def test_appends_during_commits_are_never_dropped(self, tmp_path):
        """Thread-pool engine workers journal while the main thread commits;
        a record staged mid-commit must land in some later commit."""
        import threading

        path = tmp_path / "journal.log"
        writer = JournalWriter(path)
        total = 400

        def appender(offset):
            for i in range(total):
                writer.append({"writer": offset, "n": i})

        threads = [threading.Thread(target=appender, args=(t,)) for t in range(3)]
        for thread in threads:
            thread.start()
        for __ in range(200):
            writer.commit()
        for thread in threads:
            thread.join()
        writer.commit()
        writer.close()
        records = read_journal(path).records
        assert len(records) == 3 * total
        for offset in range(3):
            seen = [r["n"] for r in records if r["writer"] == offset]
            assert seen == sorted(seen) == list(range(total))


class TestTornTail:
    def test_half_written_last_record_is_truncated(self, tmp_path):
        path = tmp_path / "journal.log"
        write_records(path, [{"n": 1}, {"n": 2}])
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # tear the last record mid-payload
        result = read_journal(path)
        assert [r["n"] for r in result.records] == [1]
        assert result.truncated_bytes > 0

    def test_bad_crc_on_last_record_is_truncated(self, tmp_path):
        path = tmp_path / "journal.log"
        write_records(path, [{"n": 1}, {"n": 2}])
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF  # flip a payload byte of the final record
        path.write_bytes(bytes(data))
        result = read_journal(path)
        assert [r["n"] for r in result.records] == [1]

    def test_repair_truncates_file_to_valid_prefix(self, tmp_path):
        path = tmp_path / "journal.log"
        write_records(path, [{"n": 1}, {"n": 2}])
        clean_length = len(path.read_bytes())
        with open(path, "ab") as handle:
            handle.write(b"deadbeef {\"torn\": tr")
        read_journal(path, repair=True)
        assert len(path.read_bytes()) == clean_length
        # After repair a writer can append from the clean boundary.
        write_records(path, [{"n": 3}])
        assert [r["n"] for r in read_journal(path).records] == [1, 2, 3]

    def test_empty_file_is_clean(self, tmp_path):
        path = tmp_path / "journal.log"
        path.write_bytes(b"")
        assert read_journal(path).records == []


class TestCorruptSegments:
    def test_mid_segment_corruption_is_rejected(self, tmp_path):
        path = tmp_path / "journal.log"
        write_records(path, [{"n": 1}, {"n": 2}, {"n": 3}])
        lines = path.read_bytes().splitlines(keepends=True)
        corrupted = bytearray(lines[1])
        corrupted[12] ^= 0xFF  # corrupt the middle record, keep the tail valid
        path.write_bytes(lines[0] + bytes(corrupted) + lines[2])
        with pytest.raises(StorageError, match="corrupt mid-segment"):
            read_journal(path)

    def test_garbage_prefix_is_rejected(self, tmp_path):
        path = tmp_path / "journal.log"
        clean = tmp_path / "clean.log"
        write_records(clean, [{"n": 1}])
        path.write_bytes(b"not a journal\n" + clean.read_bytes())
        with pytest.raises(StorageError):
            read_journal(path)

    def test_writer_repairs_torn_tail_before_appending(self, tmp_path):
        """A process that died mid-append must not poison the segment for
        the next writer: the torn fragment is truncated on open, so new
        records never merge with it into one bad-CRC line."""
        path = tmp_path / "journal.log"
        write_records(path, [{"n": 1}])
        with open(path, "ab") as handle:
            handle.write(b"deadbeef {\"torn")  # simulated mid-append death
        write_records(path, [{"n": 2}])  # fresh writer, no recover() call
        assert [r["n"] for r in read_journal(path).records] == [1, 2]
