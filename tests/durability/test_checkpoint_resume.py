"""Property tests for durable checkpoint/resume.

Three properties from the issue:

* **Resumed == uninterrupted** — interrupting a seeded run and resuming it
  from the last checkpoint reproduces the uninterrupted run bit-identically
  on the simulated engine: labels, model parameters, per-iteration latency
  records, and summaries.
* **Snapshot + journal tail == whole state** — restoring the snapshot and
  replaying the journal tail reproduces the live stores exactly.
* **Replay idempotence** — applying the same journal twice is a no-op; every
  record is keyed by its store's revision/epoch/version counter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CheckpointError
from repro.experiments.runner import RunnerConfig, SessionRunner
from repro.storage.durability import replay_records

from harness import micro_dataset


@pytest.fixture(scope="module")
def dataset():
    return micro_dataset()


def run_config(checkpoint_dir=None, **overrides):
    base = dict(
        num_steps=6,
        batch_size=3,
        strategy="serial",
        candidate_features=("r3d", "mvit"),
        evaluate_every=6,
        seed=3,
    )
    base.update(overrides)
    if checkpoint_dir is not None:
        base.setdefault("checkpoint_every", 2)
        base["checkpoint_dir"] = str(checkpoint_dir)
    return RunnerConfig(**base)


def session_fingerprint(session):
    """Everything the equivalence property compares, bit-exact."""
    labels = [(l.vid, l.start, l.end, l.label) for l in session.storage.labels.all()]
    models = {}
    for feature in session.storage.models.features_with_models():
        model, info = session.models.latest_model(feature)
        models[feature] = (info.version, info.num_labels, model.get_parameters())
    records = [
        (r.iteration, r.visible_latency, r.background_time_used, r.background_idle_time)
        for r in session.scheduler.iteration_records()
    ]
    summaries = [
        (s.iteration, s.acquisition, s.feature_name, s.num_labels_total, s.visible_latency)
        for s in session.summaries()
    ]
    return labels, models, records, summaries, session.cumulative_visible_latency()


def assert_fingerprints_equal(expected, actual):
    assert actual[0] == expected[0]  # labels
    assert actual[1].keys() == expected[1].keys()
    for feature, (version, num_labels, params) in expected[1].items():
        r_version, r_num_labels, r_params = actual[1][feature]
        assert (r_version, r_num_labels) == (version, num_labels)
        assert np.array_equal(r_params, params)  # bit-identical model
    assert actual[2] == expected[2]  # latency records, float-exact
    assert actual[3] == expected[3]  # summaries
    assert actual[4] == expected[4]  # cumulative visible latency


class TestResumedEqualsUninterrupted:
    @pytest.mark.parametrize("strategy", ["serial", "ve-full"])
    def test_interrupt_and_resume_is_bit_identical(self, dataset, tmp_path, strategy):
        baseline = SessionRunner(dataset, run_config(strategy=strategy))
        baseline.run()
        expected = session_fingerprint(baseline.vocal.session)
        baseline.close()

        interrupted = SessionRunner(
            dataset, run_config(tmp_path / "ckpt", strategy=strategy)
        )
        interrupted.run(num_steps=5)  # dies after step 5; last checkpoint at 4

        resumed = SessionRunner(
            dataset, run_config(tmp_path / "ckpt", strategy=strategy, resume=True)
        )
        assert resumed.recovery.generation == 2
        assert resumed.recovery.resumed_iteration == 4
        # Step 5's labels were durable in the journal tail (one commit per
        # add_labels batch) even though the resumed run re-derives them.
        assert len(resumed.recovery.tail_labels) == 3
        resumed.run()
        assert_fingerprints_equal(expected, session_fingerprint(resumed.vocal.session))
        resumed.close()

    def test_checkpointing_does_not_change_the_run(self, dataset, tmp_path):
        """Durability must be an observer: same trajectory with journaling on."""
        plain = SessionRunner(dataset, run_config())
        plain.run()
        expected = session_fingerprint(plain.vocal.session)
        plain.close()

        durable = SessionRunner(dataset, run_config(tmp_path / "ckpt"))
        durable.run()
        assert_fingerprints_equal(expected, session_fingerprint(durable.vocal.session))
        durable.close()

    def test_resume_restores_training_caches_bit_exactly(self, dataset, tmp_path):
        """The warm-start design cache must survive: its running column sums
        accumulate in iteration order, so a rebuild would differ in ulps."""
        interrupted = SessionRunner(dataset, run_config(tmp_path / "ckpt"))
        interrupted.run(num_steps=4)
        expected_cache = {
            fid: (
                entry.label_revision,
                entry.feature_epoch,
                entry.matrix.copy(),
                entry.column_sum.copy(),
                entry.column_sumsq.copy(),
            )
            for fid, entry in interrupted.vocal.session.models._design_cache.items()
        }
        assert expected_cache, "workload must exercise the design cache"

        resumed = SessionRunner(dataset, run_config(tmp_path / "ckpt", resume=True))
        restored = resumed.vocal.session.models._design_cache
        assert restored.keys() == expected_cache.keys()
        for fid, (revision, epoch, matrix, sums, sumsq) in expected_cache.items():
            entry = restored[fid]
            assert (entry.label_revision, entry.feature_epoch) == (revision, epoch)
            assert np.array_equal(entry.matrix, matrix)
            assert np.array_equal(entry.column_sum, sums)
            assert np.array_equal(entry.column_sumsq, sumsq)
        resumed.close()
        interrupted.close()


class TestSnapshotPlusTail:
    def test_snapshot_plus_tail_equals_live_state(self, dataset, tmp_path):
        live = SessionRunner(dataset, run_config(tmp_path / "ckpt"))
        live.run()  # 6 steps; checkpoints at 2/4/6... last checkpoint at 6
        live_session = live.vocal.session

        # Make the tail non-trivial: durable writes after the last snapshot.
        result = live.vocal.explore()
        for segment in result.segments:
            live.vocal.add_label(segment.vid, segment.start, segment.end, "a")
        live.vocal.finish_iteration()

        expected_labels = [(l.vid, l.start, l.end, l.label) for l in live_session.storage.labels.all()]
        expected_features = {
            fid: live_session.storage.features.columns(fid)[3].copy()
            for fid in live_session.storage.features.extractors()
        }
        expected_epochs = {
            fid: live_session.storage.features.epoch(fid)
            for fid in live_session.storage.features.extractors()
        }
        expected_models = {
            feature: live_session.models.latest_model(feature)[0].get_parameters()
            for feature in live_session.storage.models.features_with_models()
        }
        # close() commits the staged tail (model registrations and feature
        # rows written during finish_iteration ride with the next commit).
        live.close()

        recovered = SessionRunner(dataset, run_config(tmp_path / "ckpt", resume=True))
        storage = recovered.vocal.session.storage
        stats = replay_records(storage, recovered.recovery.tail_records)
        assert stats.labels_applied == len(recovered.recovery.tail_labels)

        assert [
            (l.vid, l.start, l.end, l.label) for l in storage.labels.all()
        ] == expected_labels
        assert set(storage.features.extractors()) == set(expected_features)
        for fid, vectors in expected_features.items():
            assert np.array_equal(storage.features.columns(fid)[3], vectors)
            assert storage.features.epoch(fid) == expected_epochs[fid]
        for feature, params in expected_models.items():
            restored_model, __ = recovered.vocal.session.models.latest_model(feature)
            assert np.array_equal(restored_model.get_parameters(), params)
        recovered.close()

    def test_resume_before_first_checkpoint_reports_whole_journal(self, dataset, tmp_path):
        first = SessionRunner(
            dataset, run_config(tmp_path / "ckpt", num_steps=2, checkpoint_every=0)
        )
        first.run()
        total_labels = len(first.vocal.session.storage.labels)
        assert total_labels > 0

        resumed = SessionRunner(
            dataset, run_config(tmp_path / "ckpt", num_steps=2, checkpoint_every=0, resume=True)
        )
        assert resumed.recovery.generation == 0
        assert resumed.recovery.resumed_iteration == 0
        assert len(resumed.recovery.tail_labels) == total_labels
        # Nothing acknowledged is lost: the tail rebuilds every store write.
        storage = resumed.vocal.session.storage
        replay_records(storage, resumed.recovery.tail_records)
        assert len(storage.labels) == total_labels
        resumed.close()
        first.close()


class TestReplayIdempotence:
    def test_second_replay_is_a_no_op(self, dataset, tmp_path):
        live = SessionRunner(
            dataset, run_config(tmp_path / "ckpt", num_steps=3, checkpoint_every=2)
        )
        live.run()
        live.close()

        resumed = SessionRunner(dataset, run_config(tmp_path / "ckpt", resume=True))
        storage = resumed.vocal.session.storage
        tail = resumed.recovery.tail_records
        first = replay_records(storage, tail)
        applied = (
            first.labels_applied + first.feature_rows_applied + first.models_applied
        )
        assert applied > 0
        labels_before = [(l.vid, l.start, l.end, l.label) for l in storage.labels.all()]
        epochs_before = {
            fid: storage.features.epoch(fid) for fid in storage.features.extractors()
        }

        second = replay_records(storage, tail)
        assert second.labels_applied == 0
        assert second.feature_rows_applied == 0
        assert second.models_applied == 0
        assert [(l.vid, l.start, l.end, l.label) for l in storage.labels.all()] == labels_before
        assert {
            fid: storage.features.epoch(fid) for fid in storage.features.extractors()
        } == epochs_before
        resumed.close()


class TestCheckpointGuards:
    def test_checkpoint_requires_configuration(self, dataset):
        runner = SessionRunner(dataset, run_config())
        with pytest.raises(CheckpointError, match="not enabled"):
            runner.vocal.checkpoint()
        with pytest.raises(CheckpointError, match="not enabled"):
            runner.vocal.resume()
        runner.close()

    def test_checkpoint_requires_closed_iteration(self, dataset, tmp_path):
        runner = SessionRunner(dataset, run_config(tmp_path / "ckpt"))
        runner.vocal.explore()
        with pytest.raises(CheckpointError, match="closed iteration"):
            runner.vocal.checkpoint()
        runner.vocal.finish_iteration()
        runner.close()

    def test_checkpoint_requires_simulated_engine(self, dataset, tmp_path):
        runner = SessionRunner(
            dataset,
            run_config(
                tmp_path / "ckpt",
                engine="threads",
                num_workers=2,
                time_scale=1e-4,
                checkpoint_every=0,  # journaling alone is engine-agnostic
            ),
        )
        with pytest.raises(CheckpointError, match="simulated engine"):
            runner.vocal.checkpoint()
        runner.close()

    def test_auto_checkpoint_on_threads_engine_rejected_at_construction(
        self, dataset, tmp_path
    ):
        with pytest.raises(ValueError, match="simulated engine"):
            SessionRunner(
                dataset,
                run_config(
                    tmp_path / "ckpt", engine="threads", num_workers=2, time_scale=1e-4
                ),
            )

    def test_resume_with_wrong_seed_is_rejected(self, dataset, tmp_path):
        first = SessionRunner(dataset, run_config(tmp_path / "ckpt", num_steps=2))
        first.run()
        first.close()
        with pytest.raises(CheckpointError, match="seed"):
            SessionRunner(dataset, run_config(tmp_path / "ckpt", resume=True, seed=4))
