"""Crash-injection test harness.

Drives a persistence scenario twice: once with a recording
:class:`~repro.storage.durability.FaultInjector` to enumerate every
write/fsync/rename/dirsync boundary the scenario crosses, then once per
boundary with the injector armed to raise
:class:`~repro.storage.durability.InjectedCrash` exactly there — simulating
the process dying between those two system calls.  After each simulated
crash the caller resumes from the checkpoint directory in fresh objects and
asserts recovery reached a durable prefix.

Used by ``tests/durability/test_crash_injection.py`` and
``benchmarks/bench_durability.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.storage.durability import FaultInjector, InjectedCrash, inject_faults

__all__ = ["CrashOutcome", "enumerate_fault_points", "run_crashing_at", "seeded_runner_config"]


@dataclass
class CrashOutcome:
    """Result of one armed run."""

    #: Whether the armed fault point was actually reached (a scenario may
    #: legitimately cross fewer points on some code paths).
    crashed: bool
    #: Name of the fault point the crash was injected at (None if not reached).
    point: str | None
    #: Every fault point crossed before the crash.
    crossed: list[str] = field(default_factory=list)


def enumerate_fault_points(scenario: Callable[[], None]) -> list[str]:
    """Run ``scenario`` once, recording every fault point it crosses."""
    injector = FaultInjector()
    with inject_faults(injector):
        scenario()
    return injector.crossed


def run_crashing_at(scenario: Callable[[], None], index: int) -> CrashOutcome:
    """Run ``scenario`` with a crash armed at the ``index``-th crossing."""
    injector = FaultInjector(crash_at=index)
    try:
        with inject_faults(injector):
            scenario()
    except InjectedCrash as crash:
        return CrashOutcome(crashed=True, point=crash.point, crossed=injector.crossed)
    return CrashOutcome(crashed=False, point=None, crossed=injector.crossed)


def micro_dataset(seed: int = 3):
    """Smallest dataset that still trains models and detects skew.

    The exhaustive crash matrix repeats one seeded run per injection point,
    so the workload must be seconds-cheap in total while still touching
    every journaled write type (labels, features, models).
    """
    from repro.datasets.synthetic import DatasetSpec, generate_dataset

    spec = DatasetSpec(
        name="micro",
        class_names=("a", "b", "c"),
        class_probabilities=(0.6, 0.25, 0.15),
        num_train_videos=14,
        num_eval_videos=6,
        video_duration=6.0,
        feature_qualities={"r3d": 0.35, "mvit": 0.3},
        correct_features=("r3d",),
        skewed=True,
    )
    return generate_dataset(spec, seed=seed)


def seeded_runner_config(checkpoint_dir: str, **overrides):
    """RunnerConfig for a tiny, deterministic checkpointed explore run.

    Serial strategy on the simulated engine: every train/evaluate runs
    synchronously, so the workload is small enough to repeat once per
    injection point while still exercising labels, feature extraction,
    model registration, journal commits, and snapshots.
    """
    from repro.experiments.runner import RunnerConfig

    defaults = dict(
        num_steps=4,
        batch_size=3,
        strategy="serial",
        candidate_features=("r3d", "mvit"),
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=2,
        evaluate_every=4,
        seed=3,
    )
    defaults.update(overrides)
    return RunnerConfig(**defaults)
