"""Unit tests for atomic snapshots, manifests, recovery fallback, and GC."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import StorageError
from repro.storage.durability import (
    CheckpointManager,
    latest_valid_snapshot,
    list_generations,
    load_manifest,
    write_snapshot,
)
from repro.storage.durability.faults import FaultInjector, InjectedCrash, inject_faults


def write_simple(root, generation, content=b"payload"):
    def writer(tmpdir):
        (tmpdir / "data.bin").write_bytes(content)
        (tmpdir / "nested").mkdir()
        (tmpdir / "nested" / "more.txt").write_text("state")

    return write_snapshot(root, generation, writer)


class TestSnapshotWrite:
    def test_publish_and_validate(self, tmp_path):
        snapshot = write_simple(tmp_path, 1)
        manifest = load_manifest(snapshot)
        assert manifest["generation"] == 1
        assert set(manifest["files"]) == {"data.bin", "nested/more.txt"}
        assert list_generations(tmp_path) == [1]

    def test_duplicate_generation_rejected(self, tmp_path):
        write_simple(tmp_path, 1)
        with pytest.raises(StorageError, match="already exists"):
            write_simple(tmp_path, 1)

    def test_crash_during_write_leaves_no_published_snapshot(self, tmp_path):
        write_simple(tmp_path, 1)
        # Crash at every boundary of generation 2's write: generation 1 must
        # stay the latest valid snapshot throughout.
        index = 0
        while True:
            injector = FaultInjector(crash_at=index)
            try:
                with inject_faults(injector):
                    write_simple(tmp_path, 2, content=b"new payload")
            except InjectedCrash as crash:
                latest = latest_valid_snapshot(tmp_path)
                if crash.point.startswith("rename:") or latest[0] == 2:
                    # The rename is the commit point: a crash at or after it
                    # may leave generation 2 fully published — and if it did,
                    # the snapshot must be complete and valid.
                    assert latest[0] in (1, 2)
                    if latest[0] == 2:
                        break
                else:
                    assert latest[0] == 1
                index += 1
                continue
            break  # ran clean: every fault point was exercised
        assert latest_valid_snapshot(tmp_path)[0] == 2


class TestRecoveryFallback:
    def test_corrupt_newest_generation_is_skipped(self, tmp_path):
        write_simple(tmp_path, 1)
        snapshot2 = write_simple(tmp_path, 2)
        (snapshot2 / "data.bin").write_bytes(b"bit rot")
        generation, path = latest_valid_snapshot(tmp_path)
        assert generation == 1

    def test_missing_manifest_is_skipped(self, tmp_path):
        write_simple(tmp_path, 1)
        snapshot2 = write_simple(tmp_path, 2)
        (snapshot2 / "MANIFEST.json").unlink()
        assert latest_valid_snapshot(tmp_path)[0] == 1

    def test_unparsable_manifest_is_skipped(self, tmp_path):
        write_simple(tmp_path, 1)
        snapshot2 = write_simple(tmp_path, 2)
        (snapshot2 / "MANIFEST.json").write_text("{not json")
        assert latest_valid_snapshot(tmp_path)[0] == 1

    def test_no_valid_snapshot_returns_none(self, tmp_path):
        assert latest_valid_snapshot(tmp_path) is None


class TestCheckpointManager:
    def test_generation_rolls_journal_segment(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.journal_record({"type": "iteration", "iteration": 1})
        manager.commit()
        generation = manager.write_generation(lambda d: (d / "s.txt").write_text("x"))
        assert generation == 1
        manager.journal_record({"type": "iteration", "iteration": 2})
        manager.commit()
        recovered = manager.recover()
        assert recovered.generation == 1
        assert [r["iteration"] for r in recovered.tail_records] == [2]
        manager.close()

    def test_gc_keeps_last_two_generations(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_generations=2)
        for n in range(1, 5):
            manager.journal_record({"n": n})
            manager.write_generation(lambda d, n=n: (d / "s.txt").write_text(str(n)))
        manager.journal_record({"n": 5})
        manager.commit()
        assert list_generations(tmp_path) == [3, 4]
        journals = sorted(p.name for p in tmp_path.glob("journal-*.log"))
        assert journals == ["journal-00000003.log", "journal-00000004.log"]
        manager.close()

    def test_recover_skips_tampered_generation_and_reports_it(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_generations=3)
        manager.write_generation(lambda d: (d / "s.txt").write_text("1"))
        manager.write_generation(lambda d: (d / "s.txt").write_text("2"))
        snapshot2 = manager.snapshot_path(2)
        (snapshot2 / "s.txt").write_text("tampered")
        recovered = manager.recover()
        assert recovered.generation == 1
        assert recovered.rejected_generations == [2]
        manager.close()

    def test_next_generation_skips_over_invalid_one(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_generations=3)
        manager.write_generation(lambda d: (d / "s.txt").write_text("1"))
        manager.write_generation(lambda d: (d / "s.txt").write_text("2"))
        (manager.snapshot_path(2) / "s.txt").write_text("tampered")
        manager.recover()
        generation = manager.write_generation(lambda d: (d / "s.txt").write_text("3"))
        assert generation == 3
        assert latest_valid_snapshot(tmp_path)[0] == 3
        manager.close()

    def test_gc_never_deletes_the_valid_fallback_over_a_corrupt_newer_one(self, tmp_path):
        """GC retains known-good generations, not a positional count: a
        bit-rotted newer snapshot must not displace the valid fallback."""
        manager = CheckpointManager(tmp_path, keep_generations=2)
        manager.write_generation(lambda d: (d / "s.txt").write_text("2"))  # gen 1
        manager.write_generation(lambda d: (d / "s.txt").write_text("2"))  # gen 2
        manager.close()
        (tmp_path / "snapshot-00000002" / "s.txt").write_text("bit rot")  # corrupt gen 2

        fresh = CheckpointManager(tmp_path, keep_generations=2)
        recovered = fresh.recover()
        assert recovered.generation == 1
        fresh.write_generation(lambda d: (d / "s.txt").write_text("3"))  # gen 3
        # The corrupt gen 2 is collected; the valid gen 1 fallback survives.
        assert list_generations(tmp_path) == [1, 3]
        assert latest_valid_snapshot(tmp_path)[0] == 3
        fresh.close()

    def test_manifest_checksums_are_crc32(self, tmp_path):
        snapshot = write_simple(tmp_path, 7)
        manifest = json.loads((snapshot / "MANIFEST.json").read_text())
        digest = manifest["files"]["data.bin"]["crc32"]
        assert len(digest) == 8 and int(digest, 16) >= 0
