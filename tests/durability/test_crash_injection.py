"""Exhaustive crash-injection matrix over a seeded explore run.

A recording pass enumerates every write/fsync/rename/dirsync fault point a
checkpointed run crosses; one armed pass per point then kills persistence
exactly there and asserts the durability contract:

* ``resume()`` always succeeds and lands on a checkpoint boundary (the last
  durable prefix);
* recovered state + journal tail lose nothing that was acknowledged before
  the last successful commit (at most the un-journaled tail dies);
* continuing the resumed run to completion reproduces the uninterrupted
  run's final labels and model parameters bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import SessionRunner

from harness import (
    enumerate_fault_points,
    micro_dataset,
    run_crashing_at,
    seeded_runner_config,
)

BATCH = 3
STEPS = 4
CHECKPOINT_EVERY = 2


@pytest.fixture(scope="module")
def dataset():
    return micro_dataset()


@pytest.fixture(scope="module")
def reference(dataset, tmp_path_factory):
    """Fingerprint of the uninterrupted checkpointed run."""
    runner = SessionRunner(
        dataset, seeded_runner_config(str(tmp_path_factory.mktemp("reference")))
    )
    runner.run()
    session = runner.vocal.session
    labels = [(l.vid, l.start, l.end, l.label) for l in session.storage.labels.all()]
    models = {
        feature: session.models.latest_model(feature)[0].get_parameters()
        for feature in session.storage.models.features_with_models()
    }
    runner.close()
    return {"labels": labels, "models": models}


def drive(dataset, checkpoint_dir, acknowledged):
    """One seeded checkpointed run that counts acknowledged label batches."""
    runner = SessionRunner(dataset, seeded_runner_config(str(checkpoint_dir)))
    session = runner.vocal.session
    original_add = session.add_labels

    def counted_add(labels):
        original_add(labels)
        # add_labels has returned: the labels are committed (journal fsynced)
        # and the user has been implicitly told they are safe.
        acknowledged.append(len(labels))

    session.add_labels = counted_add
    runner.run()
    runner.close()


def test_every_injection_point_recovers_to_a_durable_prefix(
    dataset, reference, tmp_path_factory
):
    probe_dir = tmp_path_factory.mktemp("probe")
    matrix = enumerate_fault_points(lambda: drive(dataset, probe_dir, []))
    kinds = {point.split(":", 1)[0] for point in matrix}
    assert kinds == {"write", "fsync", "rename", "dirsync"}, (
        "scenario must cross the full persistence surface"
    )
    assert len(matrix) >= 20

    crashes = 0
    for index in range(len(matrix)):
        workdir = tmp_path_factory.mktemp(f"crash{index:03d}")
        acknowledged: list[int] = []
        outcome = run_crashing_at(lambda: drive(dataset, workdir, acknowledged), index)
        assert outcome.crashed, f"fault point {index} was not reached"
        crashes += 1

        resumed = SessionRunner(
            dataset, seeded_runner_config(str(workdir), resume=True)
        )
        recovery = resumed.recovery
        session = resumed.vocal.session

        # Recovered to a checkpoint boundary (the durable prefix).
        assert recovery.resumed_iteration % CHECKPOINT_EVERY == 0
        assert recovery.resumed_iteration <= STEPS
        restored = [
            (l.vid, l.start, l.end, l.label) for l in session.storage.labels.all()
        ]
        assert len(restored) == recovery.resumed_iteration * BATCH

        # Restored labels + durable journal tail form an exact prefix of the
        # reference run's label sequence...
        tail = [(l.vid, l.start, l.end, l.label) for l in recovery.tail_labels]
        combined = restored + tail
        assert combined == reference["labels"][: len(combined)]
        # ...and nothing acknowledged before the crash was lost beyond the
        # un-journaled tail: every completed add_labels batch is recovered.
        assert len(combined) >= sum(acknowledged)

        # The continuation reproduces the uninterrupted run bit-identically.
        resumed.run()
        final_labels = [
            (l.vid, l.start, l.end, l.label) for l in session.storage.labels.all()
        ]
        assert final_labels == reference["labels"]
        for feature, params in reference["models"].items():
            model, __ = session.models.latest_model(feature)
            assert np.array_equal(model.get_parameters(), params), (
                f"model for {feature!r} diverged after crash at point "
                f"{index} ({outcome.point})"
            )
        resumed.close()
    assert crashes == len(matrix)
